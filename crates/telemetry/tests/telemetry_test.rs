//! Integration tests for the telemetry crate: JSON-lines validity and
//! the Chrome-trace round trip on a small two-rank trace, under both
//! the physical and the logical clock.

use nrlt_telemetry::json;
use nrlt_telemetry::{chrome, export, Telemetry};
use nrlt_trace::{
    ClockKind, Definitions, Event, EventKind, LocationDef, RegionDef, RegionRef, RegionRole, Trace,
};
use std::collections::BTreeMap;

fn two_rank_trace(clock: ClockKind) -> Trace {
    let main = RegionRef(0);
    let send = RegionRef(1);
    let recv = RegionRef(2);
    Trace {
        defs: Definitions {
            regions: std::sync::Arc::new(vec![
                RegionDef { name: "main".into(), role: RegionRole::Function },
                RegionDef { name: "MPI_Send".into(), role: RegionRole::MpiApi },
                RegionDef { name: "MPI_Recv".into(), role: RegionRole::MpiApi },
            ]),
            locations: std::sync::Arc::new(vec![
                LocationDef { rank: 0, thread: 0, core: 0 },
                LocationDef { rank: 1, thread: 0, core: 16 },
            ]),
            threads_per_rank: 1,
            clock,
        },
        streams: vec![
            vec![
                Event::new(0, EventKind::Enter { region: main }),
                Event::new(10, EventKind::Enter { region: send }),
                Event::new(12, EventKind::SendPost { peer: 1, tag: 7, bytes: 64 }),
                Event::new(20, EventKind::Leave { region: send }),
                Event::new(35, EventKind::CallBurst { region: main, count: 4, start: 25 }),
                Event::new(40, EventKind::Leave { region: main }),
            ]
            .into(),
            vec![
                Event::new(0, EventKind::Enter { region: main }),
                Event::new(5, EventKind::Enter { region: recv }),
                Event::new(6, EventKind::RecvPost { peer: 0, tag: 7, bytes: 64 }),
                Event::new(22, EventKind::RecvComplete { peer: 0, tag: 7, bytes: 64 }),
                Event::new(23, EventKind::Leave { region: recv }),
                Event::new(41, EventKind::Leave { region: main }),
            ]
            .into(),
        ],
    }
}

/// Collect (tid → timestamps in document order) from a parsed trace,
/// ignoring metadata events (which carry no ts).
fn timestamps_per_tid(doc: &json::Value) -> BTreeMap<i64, Vec<f64>> {
    let mut per_tid: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for ev in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        if ph == "M" {
            continue;
        }
        let tid = ev.get("tid").unwrap().as_f64().unwrap() as i64;
        let ts = ev.get("ts").unwrap().as_f64().unwrap();
        per_tid.entry(tid).or_default().push(ts);
    }
    per_tid
}

fn thread_names(doc: &json::Value) -> BTreeMap<i64, String> {
    let mut names = BTreeMap::new();
    for ev in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        if ev.get("ph").unwrap().as_str() == Some("M")
            && ev.get("name").unwrap().as_str() == Some("thread_name")
        {
            let tid = ev.get("tid").unwrap().as_f64().unwrap() as i64;
            let name = ev.get("args").unwrap().get("name").unwrap().as_str().unwrap();
            names.insert(tid, name.to_owned());
        }
    }
    names
}

#[test]
fn physical_trace_roundtrip() {
    let trace = two_rank_trace(ClockKind::Physical);
    let doc = chrome::trace_to_chrome(&trace);
    let v = json::parse(&doc).expect("chrome export is well-formed JSON");

    // One named track per location.
    let names = thread_names(&v);
    assert_eq!(names.len(), 2);
    assert_eq!(names[&0], "rank 0 thread 0 (core 0)");
    assert_eq!(names[&1], "rank 1 thread 0 (core 16)");

    // Timestamps are non-decreasing within every track.
    let per_tid = timestamps_per_tid(&v);
    assert_eq!(per_tid.len(), 2);
    for (tid, times) in &per_tid {
        assert!(!times.is_empty(), "track {tid} has events");
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "track {tid}: ts went backwards ({} > {})", w[0], w[1]);
        }
    }
}

#[test]
fn logical_trace_renders_lamport_time_as_is() {
    let trace = two_rank_trace(ClockKind::Logical { model: "lt_bb".into() });
    let doc = chrome::trace_to_chrome(&trace);
    let v = json::parse(&doc).expect("chrome export is well-formed JSON");

    // The process name advertises the logical clock.
    let mut process_name = None;
    for ev in v.get("traceEvents").unwrap().as_arr().unwrap() {
        if ev.get("ph").unwrap().as_str() == Some("M")
            && ev.get("name").unwrap().as_str() == Some("process_name")
        {
            process_name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .map(str::to_owned);
        }
    }
    assert!(process_name.unwrap().contains("lt_bb"));

    // Lamport counter values appear verbatim (no ns→µs division): the
    // send posts at Lamport time 12, and 12 must be an emitted ts.
    let per_tid = timestamps_per_tid(&v);
    assert!(per_tid[&0].contains(&12.0));
    assert!(per_tid[&1].contains(&22.0));
    for times in per_tid.values() {
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

#[test]
fn physical_timestamps_are_microseconds() {
    let mut trace = two_rank_trace(ClockKind::Physical);
    // 2_500 ns must appear as 2.5 µs.
    trace.streams[0].set_time(1, 2_500);
    trace.streams[0].set_time(2, 2_500);
    trace.streams[0].set_time(3, 2_500);
    let doc = chrome::trace_to_chrome(&trace);
    let v = json::parse(&doc).unwrap();
    let per_tid = timestamps_per_tid(&v);
    assert!(per_tid[&0].iter().any(|&t| (t - 2.5).abs() < 1e-9));
}

#[test]
fn metrics_jsonl_is_line_delimited_json() {
    let tel = Telemetry::new();
    tel.add("engine.events", 123);
    tel.observe("engine.ready_queue_depth", 4);
    tel.observe("engine.ready_queue_depth", 17);
    {
        let _outer = tel.span("experiment");
        let _inner = tel.span("measure:tsc");
    }
    let dump = export::metrics_jsonl(&tel);
    assert!(dump.ends_with('\n'));
    let mut kinds = BTreeMap::new();
    for line in dump.lines() {
        let v = json::parse(line).expect("every line parses alone");
        let kind = v.get("kind").unwrap().as_str().unwrap().to_owned();
        *kinds.entry(kind).or_insert(0u32) += 1;
    }
    assert_eq!(kinds["counter"], 1);
    assert_eq!(kinds["histogram"], 1);
    assert_eq!(kinds["span"], 2);
}

#[test]
fn write_exports_produces_the_bundle() {
    let tel = Telemetry::new();
    tel.incr("runs");
    {
        let _s = tel.span("phase");
    }
    let mut manifest = nrlt_telemetry::Manifest::new("telemetry-test");
    manifest.wall_seconds = 0.5;
    manifest.runs.push(nrlt_telemetry::RunInfo {
        name: "unit".into(),
        config: "n/a".into(),
        seed: 1,
        repetitions: 1,
    });

    let dir = std::env::temp_dir().join(format!("nrlt-telemetry-test-{}", std::process::id()));
    nrlt_telemetry::write_exports(&dir, &tel, &manifest).unwrap();
    for f in ["manifest.json", "metrics.jsonl", "pipeline.trace.json", "summary.txt"] {
        let path = dir.join(f);
        assert!(path.is_file(), "{f} missing");
    }
    let manifest_doc =
        json::parse(&std::fs::read_to_string(dir.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(manifest_doc.get("bin").unwrap().as_str(), Some("telemetry-test"));
    let trace_doc =
        json::parse(&std::fs::read_to_string(dir.join("pipeline.trace.json")).unwrap()).unwrap();
    assert!(trace_doc.get("traceEvents").is_some());
    std::fs::remove_dir_all(&dir).ok();
}
