//! Text exporters: machine-readable JSON-lines metrics and a
//! human-readable summary table.

use crate::json;
use crate::Telemetry;
use std::fmt::Write as _;

/// All counters, histograms, and spans as JSON lines — one self-contained
/// JSON object per line, each tagged with a `"kind"` field
/// (`counter` / `histogram` / `span`). Suited to `grep`/`jq`-style
/// post-processing and append-friendly aggregation across runs.
pub fn metrics_jsonl(tel: &Telemetry) -> String {
    let mut out = String::new();
    for (name, value) in tel.counters() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":{},\"value\":{}}}",
            json::string(&name),
            value
        );
    }
    for (name, h) in tel.histograms() {
        let buckets: Vec<String> = h
            .nonzero_buckets()
            .iter()
            .map(|(_, lo, hi, c)| format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"))
            .collect();
        let min = if h.is_empty() { 0 } else { h.min };
        let _ = writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[{}]}}",
            json::string(&name),
            h.count,
            h.sum,
            min,
            h.max,
            json::number(h.mean()),
            buckets.join(",")
        );
    }
    for s in tel.spans() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"span\",\"name\":{},\"cat\":{},\"track\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{},\"closed\":{}}}",
            json::string(&s.name),
            json::string(&s.cat),
            s.track,
            s.depth,
            s.start_ns,
            s.dur_ns,
            s.closed
        );
    }
    out
}

/// Human-readable summary: spans as an indented per-phase timing table,
/// then counters, then histogram digests.
///
/// Ordering is fully deterministic: counters and histograms are stored
/// sorted by name, and spans are sorted by (name, track, start) before
/// rendering — a parallel run records spans in whatever order the
/// scheduler interleaved the workers, so the raw open order would make
/// two identical runs produce differently-ordered summaries.
pub fn summary_table(tel: &Telemetry) -> String {
    let mut out = String::new();

    let mut spans = tel.spans();
    spans.sort_by(|a, b| {
        (&a.name, a.track, a.start_ns, a.depth).cmp(&(&b.name, b.track, b.start_ns, b.depth))
    });
    if !spans.is_empty() {
        let _ = writeln!(out, "phase timings (host wall clock)");
        let _ = writeln!(out, "  {:<44} {:>12}  track", "span", "duration");
        for s in &spans {
            let label = format!(
                "{}{}{}",
                "  ".repeat(s.depth as usize),
                s.name,
                if s.closed { "" } else { " (open)" }
            );
            let _ = writeln!(out, "  {:<44} {:>12}  {}", label, fmt_ns(s.dur_ns), s.track);
        }
        let _ = writeln!(out);
    }

    let counters = tel.counters();
    if !counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<44} {value:>16}");
        }
        let _ = writeln!(out);
    }

    let hists = tel.histograms();
    if !hists.is_empty() {
        let _ = writeln!(out, "histograms (log-scale buckets)");
        for (name, h) in &hists {
            let _ = writeln!(
                out,
                "  {:<44} n={} min={} mean={:.1} max={}",
                name,
                h.count,
                if h.is_empty() { 0 } else { h.min },
                h.mean(),
                h.max
            );
            for (_, lo, hi, c) in h.nonzero_buckets() {
                let _ = writeln!(out, "    [{lo:>20}, {hi:>20}] {c:>12}");
            }
        }
    }

    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_each_parse() {
        let t = Telemetry::new();
        t.add("engine.events", 42);
        t.observe("depth", 3);
        t.observe("depth", 900);
        {
            let _s = t.span("measure");
        }
        let dump = metrics_jsonl(&t);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = json::parse(line).expect("line is valid JSON");
            assert!(v.get("kind").is_some());
            assert!(v.get("name").is_some());
        }
    }

    #[test]
    fn summary_mentions_everything() {
        let t = Telemetry::new();
        t.add("engine.events", 7);
        t.observe("engine.ready_queue_depth", 5);
        {
            let _s = t.span("analyze");
        }
        let s = summary_table(&t);
        assert!(s.contains("engine.events"));
        assert!(s.contains("engine.ready_queue_depth"));
        assert!(s.contains("analyze"));
    }

    #[test]
    fn empty_handle_exports_cleanly() {
        let t = Telemetry::new();
        assert_eq!(metrics_jsonl(&t), "");
        assert_eq!(summary_table(&t), "");
    }

    #[test]
    fn summary_is_byte_identical_across_recording_orders() {
        use crate::SpanRecord;
        // The same logical run, with worker spans arriving in two
        // different scheduler interleavings.
        let mk = |name: &str, track: u32, start_ns: u64| SpanRecord {
            name: name.into(),
            cat: "experiment".into(),
            track,
            depth: 0,
            start_ns,
            dur_ns: 1_000_000,
            closed: true,
        };
        let spans =
            [mk("mode:tsc", 1, 10), mk("mode:tsc", 2, 12), mk("mode:lt_1", 1, 20), mk("ref", 2, 5)];
        let a = Telemetry::new();
        let b = Telemetry::new();
        for s in &spans {
            a.record_span(s.clone());
        }
        for s in spans.iter().rev() {
            b.record_span(s.clone());
        }
        for t in [&a, &b] {
            t.add("experiment.repetitions", 4);
            t.observe("engine.ready_queue_depth", 3);
        }
        assert_eq!(summary_table(&a), summary_table(&b));
        // And the order is the documented one: name, then track, then start.
        let s = summary_table(&a);
        let pos = |needle: &str| s.find(needle).unwrap_or_else(|| panic!("{needle} in {s}"));
        assert!(pos("mode:lt_1") < pos("mode:tsc"));
        assert!(pos("mode:tsc") < pos("ref"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(17), "17 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
