//! Cooperative wall-clock sampling profiler.
//!
//! The span layer of this crate ([`crate::Telemetry`]) records *every*
//! span open/close under a mutex — exact, but expensive enough that a
//! fully traced pipeline run costs tens of percent of wall time. This
//! module is the always-on complement: worker threads *publish* their
//! current frame path into a lock-free per-thread slot (a fixed-size
//! frame array guarded by a generation counter — a seqlock), and a
//! background sampler thread snapshots every slot at a configurable
//! rate (default [`DEFAULT_RATE_HZ`] = 97 Hz, prime so the sampler does
//! not phase-lock with periodic pipeline work). Each snapshot folds the
//! observed stack into a collapsed-stack histogram, which exports
//! through the same format as [`nrlt-report`'s flamegraph
//! path](https://github.com/jonhoo/inferno): `a;b;c <count>`.
//!
//! The cost model is the whole point:
//!
//! * **publishing** a frame is two atomic increments and two relaxed
//!   stores on a cache line owned by the publishing thread — no locks,
//!   no allocation, independent of the sampling rate;
//! * **sampling** costs one background thread waking ~100 times per
//!   second to read at most [`MAX_SLOTS`] cache lines — well under 1%
//!   of one core;
//! * **disabled** (no profiler installed), [`frame`] is one relaxed
//!   atomic load and a thread-local check, and *no slot is ever
//!   published* — the opt-in contract every instrumented layer of this
//!   workspace already follows, test-asserted via [`SampleProf::publishes`].
//!
//! Frame names come from the fixed registry in [`frames`] — publication
//! sites pass a `FrameId`, never a string, so the hot path moves no
//! bytes and every sampled stack is guaranteed to resolve to a
//! registered name (the structure invariant the tests pin: sampled
//! frame names ⊆ the registry). Sample *counts* are inherently
//! nondeterministic — they belong in wall sidecars
//! (`sampleprof.wall.json`), never in deterministic artifacts.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// Default sampling rate in Hz. 97 is prime: a sampler that ticks at a
/// divisor of common loop periods would alias, systematically hitting
/// (or missing) the same frame.
pub const DEFAULT_RATE_HZ: u32 = 97;

/// Maximum number of concurrently registered threads.
pub const MAX_SLOTS: usize = 64;

/// Maximum published stack depth per slot; deeper frames are recorded
/// as [`frames::TRUNCATED`].
pub const MAX_FRAMES: usize = 24;

/// The frame registry: every frame path element the pipeline can
/// publish. Publication sites use the `FrameId` constants; the sampler
/// resolves them back through [`frames::name`]. Keeping the registry
/// static is what makes publication allocation-free and lets tests
/// assert that every sampled frame name is registered.
pub mod frames {
    /// Identifier of a registered frame (an index into [`NAMES`]).
    pub type FrameId = u16;

    /// An uninstrumented reference repetition.
    pub const EXPERIMENT_REFERENCE: FrameId = 0;
    /// One measured (mode, repetition) cell.
    pub const MODE_CELL: FrameId = 1;
    /// One instrumented measurement run (`nrlt-measure`).
    pub const MEASURE_RUN: FrameId = 2;
    /// The discrete-event engine's event loop (`nrlt-exec`).
    pub const ENGINE_RUN: FrameId = 3;
    /// One rank's scheduling quantum inside the engine.
    pub const ENGINE_RANK: FrameId = 4;
    /// Batched noise-stream warm-up (`crates/sim/noise.rs`).
    pub const NOISE_BATCH: FrameId = 5;
    /// Trace finalization in the measurement observer
    /// (`crates/measure/observer.rs`).
    pub const TRACE_BUILD: FrameId = 6;
    /// Trace replay during analysis.
    pub const ANALYZE_REPLAY: FrameId = 7;
    /// Point-to-point wait-state detection.
    pub const ANALYZE_P2P: FrameId = 8;
    /// Collective wait-state detection.
    pub const ANALYZE_COLLECTIVES: FrameId = 9;
    /// OpenMP barrier wait-state detection.
    pub const ANALYZE_OMP: FrameId = 10;
    /// Idle-thread accounting.
    pub const ANALYZE_IDLE: FrameId = 11;
    /// Delay-cost (root-cause) analysis.
    pub const ANALYZE_DELAY: FrameId = 12;
    /// Deterministic result merge after the cell fan-out.
    pub const EXPERIMENT_MERGE: FrameId = 13;
    /// Harness-level work outside any experiment (report rendering,
    /// bundle writing).
    pub const HARNESS: FrameId = 14;
    /// Spilling trace chunks to the out-of-core segment store
    /// (`crates/trace/segment.rs`).
    pub const TRACE_SPILL: FrameId = 15;
    /// K-way merge over per-location cursors during streaming analysis.
    pub const ANALYZE_MERGE: FrameId = 16;
    /// Pseudo-frame appended when a stack exceeded [`super::MAX_FRAMES`].
    pub const TRUNCATED: FrameId = 17;

    /// Display names, indexed by `FrameId`.
    pub const NAMES: [&str; 18] = [
        "experiment.reference",
        "experiment.mode_cell",
        "measure.run",
        "engine.run",
        "engine.rank",
        "sim.noise_batch",
        "measure.trace_build",
        "analysis.replay",
        "analysis.p2p",
        "analysis.collectives",
        "analysis.omp_barriers",
        "analysis.idle_threads",
        "analysis.delay_costs",
        "experiment.merge",
        "harness",
        "measure.trace_spill",
        "analysis.merge",
        "(truncated)",
    ];

    /// The display name of a frame id (`"(unregistered)"` for ids
    /// outside the registry — sampled stacks never contain those by
    /// construction, but the resolver is total anyway).
    pub fn name(id: FrameId) -> &'static str {
        NAMES.get(id as usize).copied().unwrap_or("(unregistered)")
    }
}

use frames::FrameId;

/// One per-thread publication slot: a seqlock-guarded frame array.
///
/// Writers (the owning thread) bump `gen` to odd, mutate, bump back to
/// even. The sampler retries a read whose generation was odd or changed
/// — a torn stack is *dropped*, never recorded.
struct Slot {
    gen: AtomicU32,
    depth: AtomicU32,
    frames: [AtomicU16; MAX_FRAMES],
    active: AtomicBool,
    pushes: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        // `AtomicU16` is not Copy; `[const { ... }; N]` repeats the
        // expression per element instead of copying one value.
        Slot {
            gen: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: [const { AtomicU16::new(0) }; MAX_FRAMES],
            active: AtomicBool::new(false),
            pushes: AtomicU64::new(0),
        }
    }

    fn push(&self, id: FrameId) {
        self.gen.fetch_add(1, Ordering::AcqRel);
        let d = self.depth.load(Ordering::Relaxed) as usize;
        if d < MAX_FRAMES {
            self.frames[d].store(id, Ordering::Relaxed);
        }
        self.depth.store(d as u32 + 1, Ordering::Relaxed);
        self.gen.fetch_add(1, Ordering::AcqRel);
        self.pushes.fetch_add(1, Ordering::Relaxed);
    }

    fn pop(&self) {
        self.gen.fetch_add(1, Ordering::AcqRel);
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        self.gen.fetch_add(1, Ordering::AcqRel);
    }

    /// Seqlock-read the current stack. `None` when the slot is
    /// inactive, empty, or was written concurrently on every retry.
    fn snapshot(&self) -> Option<Vec<FrameId>> {
        for _ in 0..8 {
            let g1 = self.gen.load(Ordering::Acquire);
            if g1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if !self.active.load(Ordering::Acquire) {
                return None;
            }
            let depth = self.depth.load(Ordering::Relaxed) as usize;
            if depth == 0 {
                return None;
            }
            let shown = depth.min(MAX_FRAMES);
            let mut stack: Vec<FrameId> =
                (0..shown).map(|i| self.frames[i].load(Ordering::Relaxed)).collect();
            if depth > MAX_FRAMES {
                stack.push(frames::TRUNCATED);
            }
            let g2 = self.gen.load(Ordering::Acquire);
            if g1 == g2 {
                return Some(stack);
            }
        }
        None
    }

    /// Release for reuse (registration CAS on `active` claims it).
    fn release(&self) {
        self.gen.fetch_add(1, Ordering::AcqRel);
        self.depth.store(0, Ordering::Relaxed);
        self.active.store(false, Ordering::Release);
        self.gen.fetch_add(1, Ordering::AcqRel);
    }
}

struct ProfInner {
    interval: Duration,
    rate_hz: u32,
    slots: Vec<Slot>,
    stop: AtomicBool,
    /// Sampler ticks taken (including ticks where every slot was idle).
    ticks: AtomicU64,
    /// Stacks recorded into the folded histogram.
    samples: AtomicU64,
    /// Seqlock reads abandoned after exhausting retries.
    torn: AtomicU64,
    folded: Mutex<BTreeMap<Vec<FrameId>, u64>>,
    sampler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ProfInner {
    fn tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<Vec<FrameId>> = Vec::new();
        for slot in &self.slots {
            if !slot.active.load(Ordering::Relaxed) {
                continue;
            }
            let before = slot.gen.load(Ordering::Acquire);
            match slot.snapshot() {
                Some(stack) => local.push(stack),
                // A failed snapshot of an active slot with a moving
                // generation counter is a torn read, not an idle slot.
                None => {
                    if slot.gen.load(Ordering::Acquire) != before {
                        self.torn.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if !local.is_empty() {
            let mut folded = self.folded.lock().expect("sampler poisoned");
            for stack in local {
                self.samples.fetch_add(1, Ordering::Relaxed);
                *folded.entry(stack).or_insert(0) += 1;
            }
        }
    }
}

/// The sampling-profiler handle. Clone-free sharing happens through the
/// process-wide [`SampleProf::install`] guard; the handle itself is
/// cheap to move and all methods take `&self`.
pub struct SampleProf {
    inner: Arc<ProfInner>,
}

impl Default for SampleProf {
    fn default() -> Self {
        SampleProf::new()
    }
}

impl SampleProf {
    /// A profiler sampling at [`DEFAULT_RATE_HZ`].
    pub fn new() -> SampleProf {
        SampleProf::with_rate(DEFAULT_RATE_HZ)
    }

    /// A profiler sampling at `rate_hz` (clamped to 1..=1000).
    pub fn with_rate(rate_hz: u32) -> SampleProf {
        let rate_hz = rate_hz.clamp(1, 1000);
        SampleProf {
            inner: Arc::new(ProfInner {
                interval: Duration::from_nanos(1_000_000_000 / rate_hz as u64),
                rate_hz,
                slots: (0..MAX_SLOTS).map(|_| Slot::new()).collect(),
                stop: AtomicBool::new(false),
                ticks: AtomicU64::new(0),
                samples: AtomicU64::new(0),
                torn: AtomicU64::new(0),
                folded: Mutex::new(BTreeMap::new()),
                sampler: Mutex::new(None),
            }),
        }
    }

    /// The configured sampling rate in Hz.
    pub fn rate_hz(&self) -> u32 {
        self.inner.rate_hz
    }

    /// Install this profiler as the process's active sampler and start
    /// the background sampler thread. Threads that subsequently call
    /// [`frame`] lazily register a slot here; the guard uninstalls (and
    /// stops the sampler) on drop. Installing while another profiler is
    /// installed replaces it for *new* registrations; already-attached
    /// threads re-resolve on their next [`frame`] call via the epoch.
    #[must_use = "the profiler uninstalls when the guard drops"]
    pub fn install(&self) -> InstallGuard {
        {
            let mut active = ACTIVE.lock().expect("sampler registry poisoned");
            *active = Some(Arc::downgrade(&self.inner));
        }
        EPOCH.fetch_add(1, Ordering::Release);
        self.start();
        InstallGuard { inner: Arc::clone(&self.inner) }
    }

    /// Start the sampler thread (no-op when already running).
    fn start(&self) {
        let mut sampler = self.inner.sampler.lock().expect("sampler poisoned");
        if sampler.is_some() {
            return;
        }
        self.inner.stop.store(false, Ordering::Release);
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("nrlt-sampler".into())
            .spawn(move || {
                while !inner.stop.load(Ordering::Acquire) {
                    std::thread::sleep(inner.interval);
                    inner.tick();
                }
            })
            .expect("cannot spawn sampler thread");
        *sampler = Some(handle);
    }

    /// Stop and join the sampler thread (idempotent). The folded
    /// histogram keeps everything sampled so far.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::Release);
        let handle = self.inner.sampler.lock().expect("sampler poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Sampler wake-ups so far (including idle ticks).
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Stacks folded into the histogram so far.
    pub fn samples(&self) -> u64 {
        self.inner.samples.load(Ordering::Relaxed)
    }

    /// Snapshot reads dropped because a writer was mid-update.
    pub fn torn(&self) -> u64 {
        self.inner.torn.load(Ordering::Relaxed)
    }

    /// Total frame publications into this profiler's slots. The opt-in
    /// contract test: a run without [`SampleProf::install`] leaves this
    /// at 0 — no thread ever published a slot.
    pub fn publishes(&self) -> u64 {
        self.inner.slots.iter().map(|s| s.pushes.load(Ordering::Relaxed)).sum()
    }

    /// Number of currently registered thread slots.
    pub fn active_slots(&self) -> usize {
        self.inner.slots.iter().filter(|s| s.active.load(Ordering::Relaxed)).count()
    }

    /// The folded histogram resolved to frame names: one entry per
    /// distinct sampled stack, sorted by stack for deterministic
    /// iteration (counts are wall-clock data and inherently not).
    pub fn stack_counts(&self) -> BTreeMap<Vec<&'static str>, u64> {
        let folded = self.inner.folded.lock().expect("sampler poisoned");
        folded
            .iter()
            .map(|(stack, &n)| (stack.iter().map(|&id| frames::name(id)).collect(), n))
            .collect()
    }

    /// The top `n` sampled stacks by count (stack rendered `a;b;c`),
    /// count-descending with the rendered stack as tiebreak.
    pub fn top_stacks(&self, n: usize) -> Vec<(String, u64)> {
        let mut all: Vec<(String, u64)> =
            self.stack_counts().into_iter().map(|(stack, c)| (stack.join(";"), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }
}

/// Keeps a [`SampleProf`] installed; uninstalls and stops the sampler
/// thread on drop.
pub struct InstallGuard {
    inner: Arc<ProfInner>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        {
            let mut active = ACTIVE.lock().expect("sampler registry poisoned");
            // Only uninstall ourselves — a newer install wins.
            if let Some(current) = active.as_ref().and_then(Weak::upgrade) {
                if Arc::ptr_eq(&current, &self.inner) {
                    *active = None;
                }
            }
        }
        EPOCH.fetch_add(1, Ordering::Release);
        self.inner.stop.store(true, Ordering::Release);
        let handle = self.inner.sampler.lock().expect("sampler poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// The process-wide active profiler. A `Weak` so a leaked guard can
/// never keep slots alive past their profiler; bumping [`EPOCH`] makes
/// every thread re-resolve lazily.
static ACTIVE: Mutex<Option<Weak<ProfInner>>> = Mutex::new(None);
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// A thread's registration with a profiler; releases the slot on drop
/// (which thread-local destruction triggers at thread exit).
struct SlotRef {
    inner: Arc<ProfInner>,
    idx: usize,
}

impl SlotRef {
    fn slot(&self) -> &Slot {
        &self.inner.slots[self.idx]
    }
}

impl Drop for SlotRef {
    fn drop(&mut self) {
        self.slot().release();
    }
}

#[derive(Default)]
struct ThreadState {
    epoch: u64,
    slot: Option<SlotRef>,
}

thread_local! {
    static THREAD: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Re-resolve the thread's slot after an epoch change: drop the old
/// registration, claim a fresh slot in the currently installed
/// profiler (if any).
fn refresh(state: &mut ThreadState, epoch: u64) {
    state.slot = None; // releases via Drop before re-claiming
    state.epoch = epoch;
    let inner = {
        let active = ACTIVE.lock().expect("sampler registry poisoned");
        active.as_ref().and_then(Weak::upgrade)
    };
    let Some(inner) = inner else { return };
    for (idx, slot) in inner.slots.iter().enumerate() {
        if slot.active.compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
            state.slot = Some(SlotRef { inner, idx });
            return;
        }
    }
    // All slots taken: this thread publishes nothing (counted nowhere —
    // MAX_SLOTS is far above any realistic worker count).
}

/// Publish frame `id` on this thread until the returned guard drops.
///
/// With no profiler installed this is one atomic load, one
/// thread-local access, and a branch — the "disabled" cost every
/// pipeline layer pays at its (coarse) publication sites. With a
/// profiler installed, the first call per thread registers a slot;
/// subsequent calls are two atomic increments and two stores.
pub fn frame(id: FrameId) -> FrameGuard {
    THREAD.with(|cell| {
        let mut state = cell.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        if state.epoch != epoch {
            refresh(&mut state, epoch);
        }
        match &state.slot {
            Some(slot_ref) => {
                slot_ref.slot().push(id);
                FrameGuard { registered: Some(Arc::clone(&slot_ref.inner)) }
            }
            None => FrameGuard { registered: None },
        }
    })
}

/// True when this thread currently holds a publication slot. The
/// disabled-run contract test asserts this stays false without an
/// installed profiler.
pub fn attached() -> bool {
    THREAD.with(|cell| cell.borrow().slot.is_some())
}

/// RAII guard of one published frame; pops it on drop.
#[must_use = "the frame unpublishes when the guard drops"]
pub struct FrameGuard {
    registered: Option<Arc<ProfInner>>,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        let Some(inner) = self.registered.take() else { return };
        THREAD.with(|cell| {
            let state = cell.borrow();
            if let Some(slot_ref) = &state.slot {
                if Arc::ptr_eq(&slot_ref.inner, &inner) {
                    slot_ref.slot().pop();
                }
                // Epoch moved between push and pop: the old slot was
                // already released wholesale (depth reset), nothing to
                // undo.
            }
        });
    }
}

/// A direct handle to this thread's slot, for hot layers that want to
/// publish frames without paying the thread-local lookup per call
/// (e.g. once per engine scheduling quantum). Resolves to `None` when
/// no profiler is installed — the `None` branch is the entire disabled
/// cost of a publication site using it.
pub fn leaf_handle() -> Option<LeafHandle> {
    THREAD.with(|cell| {
        let mut state = cell.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        if state.epoch != epoch {
            refresh(&mut state, epoch);
        }
        state
            .slot
            .as_ref()
            .map(|slot_ref| LeafHandle { inner: Arc::clone(&slot_ref.inner), idx: slot_ref.idx })
    })
}

/// See [`leaf_handle`]. Push/pop pairs must stay balanced on the
/// owning thread; the handle must not outlive the thread's
/// registration scope (resolve it fresh per run).
pub struct LeafHandle {
    inner: Arc<ProfInner>,
    idx: usize,
}

impl LeafHandle {
    /// Push `id` onto the owning thread's published stack.
    pub fn push(&self, id: FrameId) {
        self.inner.slots[self.idx].push(id);
    }

    /// Pop the most recent frame.
    pub fn pop(&self) {
        self.inner.slots[self.idx].pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Installing a profiler mutates process-global state; tests that
    /// install serialize on this.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_frame_publishes_nothing() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let prof = SampleProf::new(); // constructed but never installed
        {
            let _f = frame(frames::ENGINE_RUN);
            let _g = frame(frames::NOISE_BATCH);
            assert!(!attached());
        }
        assert_eq!(prof.publishes(), 0);
        assert_eq!(prof.active_slots(), 0);
        assert!(prof.stack_counts().is_empty());
    }

    #[test]
    fn installed_frames_are_published_and_sampled() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let prof = SampleProf::with_rate(1000);
        let guard = prof.install();
        {
            let _a = frame(frames::MODE_CELL);
            assert!(attached());
            let _b = frame(frames::MEASURE_RUN);
            let _c = frame(frames::ENGINE_RUN);
            // Hold the stack long enough for several sampler ticks.
            let deadline = std::time::Instant::now() + Duration::from_millis(400);
            while prof.samples() == 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        prof.stop();
        drop(guard);
        assert!(prof.publishes() >= 3);
        assert!(prof.samples() > 0, "sampler must observe the held stack");
        let counts = prof.stack_counts();
        let expected: Vec<&str> = vec!["experiment.mode_cell", "measure.run", "engine.run"];
        assert!(counts.keys().any(|stack| *stack == expected), "expected full stack in {counts:?}");
        // Structure invariant: every sampled frame resolves to the registry.
        for stack in counts.keys() {
            for name in stack {
                assert!(frames::NAMES.contains(name), "unregistered frame {name}");
            }
        }
    }

    #[test]
    fn uninstall_detaches_threads_lazily() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let prof = SampleProf::with_rate(1000);
        let guard = prof.install();
        {
            let _a = frame(frames::HARNESS);
            assert!(attached());
        }
        drop(guard);
        // Next frame call re-resolves: no profiler, no slot.
        {
            let _a = frame(frames::HARNESS);
            assert!(!attached());
        }
        assert_eq!(prof.active_slots(), 0, "slot must be released on epoch change");
    }

    #[test]
    fn worker_threads_get_their_own_slots_and_release_on_exit() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let prof = SampleProf::with_rate(1000);
        let guard = prof.install();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _f = frame(frames::MODE_CELL);
                    assert!(attached());
                    std::thread::sleep(Duration::from_millis(20));
                });
            }
        });
        // Scoped threads exited: their thread-local destructors released
        // every slot.
        assert_eq!(prof.active_slots(), 0);
        assert!(prof.publishes() >= 4);
        prof.stop();
        drop(guard);
    }

    #[test]
    fn deep_stacks_truncate_with_a_marker() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let prof = SampleProf::with_rate(1000);
        let guard = prof.install();
        let _guards: Vec<FrameGuard> =
            (0..MAX_FRAMES + 3).map(|_| frame(frames::ENGINE_RANK)).collect();
        let deadline = std::time::Instant::now() + Duration::from_millis(400);
        while prof.samples() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        prof.stop();
        let counts = prof.stack_counts();
        assert!(
            counts.keys().any(|s| s.last() == Some(&"(truncated)")),
            "over-deep stack must end in the truncation marker: {counts:?}"
        );
        drop(_guards);
        drop(guard);
    }

    #[test]
    fn leaf_handle_matches_frame_publication() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let prof = SampleProf::with_rate(1000);
        let guard = prof.install();
        assert!(leaf_handle().is_none() || attached());
        let _root = frame(frames::ENGINE_RUN);
        let leaf = leaf_handle().expect("installed profiler must hand out a leaf handle");
        leaf.push(frames::ENGINE_RANK);
        leaf.pop();
        prof.stop();
        drop(guard);
        assert!(prof.publishes() >= 2);
    }

    #[test]
    fn top_stacks_rank_by_count() {
        let prof = SampleProf::new();
        {
            let mut folded = prof.inner.folded.lock().unwrap();
            folded.insert(vec![frames::ENGINE_RUN], 5);
            folded.insert(vec![frames::MODE_CELL, frames::MEASURE_RUN], 9);
        }
        let top = prof.top_stacks(10);
        assert_eq!(top[0], ("experiment.mode_cell;measure.run".to_owned(), 9));
        assert_eq!(top[1], ("engine.run".to_owned(), 5));
        assert_eq!(prof.top_stacks(1).len(), 1);
    }
}
