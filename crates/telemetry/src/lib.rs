//! # nrlt-telemetry — self-telemetry for the simulation pipeline
//!
//! The pipeline of this reproduction (discrete-event engine →
//! measurement → trace → replay analysis → profile) observes *simulated*
//! executions; this crate observes the pipeline itself. It provides a
//! global-free, explicitly-threaded [`Telemetry`] handle with
//!
//! * **spans** — host wall-clock intervals with nesting, grouped into
//!   tracks (one per worker thread where relevant),
//! * **counters** — monotonic `u64` counters and settable gauges,
//! * **histograms** — log-scale (power-of-two bucket) distributions,
//!
//! and three exporters:
//!
//! * [`export::metrics_jsonl`] — machine-readable JSON-lines dump,
//! * [`export::summary_table`] — human-readable per-phase summary,
//! * [`chrome::pipeline_trace_json`] — Chrome trace-event format
//!   (loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)),
//!   plus [`chrome::trace_to_chrome`], which renders any
//!   [`nrlt_trace::Trace`] — physical *or* logical timestamps — as a
//!   Chrome trace with one track per location.
//!
//! Everything is opt-in: instrumented layers take `Option<&Telemetry>`
//! and perform no telemetry work (not even an atomic increment) when
//! handed `None`. There are no globals, no threads, and no external
//! dependencies; time comes from `std::time::Instant`.

#![warn(missing_docs)]

pub mod chrome;
pub mod export;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod sample;

pub use hist::Histogram;
pub use manifest::{git_rev, write_exports, Manifest, RunInfo};
pub use sample::SampleProf;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    /// Default track for spans opened on this thread (see [`set_track`]).
    static CURRENT_TRACK: Cell<u32> = const { Cell::new(0) };
}

/// The track spans opened on this thread default to (0 unless inside a
/// [`set_track`] scope).
pub fn current_track() -> u32 {
    CURRENT_TRACK.with(Cell::get)
}

/// Route this thread's [`Telemetry::span`] / [`Telemetry::span_cat`]
/// calls onto `track` until the returned guard drops (then the previous
/// track is restored). Worker threads in a parallel fan-out use this so
/// their spans — including those recorded by layers that never heard of
/// the fan-out — land on per-worker tracks instead of interleaving on
/// track 0.
#[must_use = "the track resets when the guard drops"]
pub fn set_track(track: u32) -> TrackGuard {
    let previous = CURRENT_TRACK.with(|t| t.replace(track));
    TrackGuard { previous }
}

/// Guard of a [`set_track`] scope; restores the previous track on drop.
pub struct TrackGuard {
    previous: u32,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        CURRENT_TRACK.with(|t| t.set(self.previous));
    }
}

/// One completed (or still open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Display name.
    pub name: String,
    /// Category (Chrome trace `cat` field), e.g. `"pipeline"`.
    pub cat: String,
    /// Track the span belongs to (0 = the main pipeline thread; workers
    /// use their worker index + 1).
    pub track: u32,
    /// Nesting depth within the track at the time the span opened.
    pub depth: u32,
    /// Start, in nanoseconds since the handle's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds; 0 while the span is still open.
    pub dur_ns: u64,
    /// False while the span is still open.
    pub closed: bool,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
    stacks: BTreeMap<u32, Vec<usize>>,
}

/// The telemetry handle. Cheap to share by reference across threads
/// (`&Telemetry` is `Send + Sync`); all recording methods take `&self`.
pub struct Telemetry {
    epoch: Instant,
    calls: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh handle; its epoch (span time zero) is now.
    pub fn new() -> Self {
        Telemetry {
            epoch: Instant::now(),
            calls: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Nanoseconds since the handle was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// How many recording calls (spans opened, counter adds, histogram
    /// observations) this handle has received. The opt-in tests use this
    /// to prove that a `None`-telemetry run performs zero telemetry work.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    // ---- spans ---------------------------------------------------------

    /// Open a span on the thread's current track (track 0 unless inside
    /// a [`set_track`] scope), category `"pipeline"`. The span closes
    /// when the returned guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        self.span_track(name, "pipeline", current_track())
    }

    /// Open a span with an explicit category on the thread's current
    /// track.
    pub fn span_cat(&self, name: impl Into<String>, cat: &str) -> Span<'_> {
        self.span_track(name, cat, current_track())
    }

    /// Open a span on an explicit track (for worker threads).
    pub fn span_track(&self, name: impl Into<String>, cat: &str, track: u32) -> Span<'_> {
        self.bump();
        let start_ns = self.elapsed_ns();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        let stack = inner.stacks.entry(track).or_default();
        let depth = stack.len() as u32;
        let idx = inner.spans.len();
        inner.spans.push(SpanRecord {
            name: name.into(),
            cat: cat.to_owned(),
            track,
            depth,
            start_ns,
            dur_ns: 0,
            closed: false,
        });
        inner.stacks.entry(track).or_default().push(idx);
        Span { tel: self, idx, track }
    }

    /// Import an already-completed span record verbatim (no clock reads,
    /// no stack bookkeeping). The report layer uses this to rebuild a
    /// handle from an exported bundle; tests use it to construct span
    /// sets with exact timings.
    pub fn record_span(&self, rec: SpanRecord) {
        self.bump();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        inner.spans.push(rec);
    }

    fn close_span(&self, idx: usize, track: u32) {
        let end = self.elapsed_ns();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        if let Some(stack) = inner.stacks.get_mut(&track) {
            if let Some(pos) = stack.iter().rposition(|&i| i == idx) {
                stack.remove(pos);
            }
        }
        let rec = &mut inner.spans[idx];
        rec.dur_ns = end.saturating_sub(rec.start_ns);
        rec.closed = true;
    }

    // ---- counters ------------------------------------------------------

    /// Add `delta` to the monotonic counter `name` (creating it at 0).
    pub fn add(&self, name: &str, delta: u64) {
        self.bump();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Increment the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set(&self, name: &str, value: u64) {
        self.bump();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        inner.counters.insert(name.to_owned(), value);
    }

    /// Raise the gauge `name` to at least `value`.
    pub fn set_max(&self, name: &str, value: u64) {
        self.bump();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        let v = inner.counters.entry(name.to_owned()).or_insert(0);
        *v = (*v).max(value);
    }

    // ---- histograms ----------------------------------------------------

    /// Record `value` into the log-scale histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.bump();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        if let Some(h) = inner.hists.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            inner.hists.insert(name.to_owned(), h);
        }
    }

    // ---- snapshots -----------------------------------------------------

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// One counter's current value, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner.counters.get(name).copied()
    }

    /// Snapshot of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Snapshot of all spans in open order. Open spans report the
    /// duration they have accumulated so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let now = self.elapsed_ns();
        let inner = self.inner.lock().expect("telemetry poisoned");
        inner
            .spans
            .iter()
            .map(|s| {
                let mut s = s.clone();
                if !s.closed {
                    s.dur_ns = now.saturating_sub(s.start_ns);
                }
                s
            })
            .collect()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("telemetry poisoned");
        f.debug_struct("Telemetry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.hists.len())
            .field("spans", &inner.spans.len())
            .field("calls", &self.call_count())
            .finish()
    }
}

/// RAII guard of an open span; closes the span on drop.
#[must_use = "a span measures the scope it lives in"]
pub struct Span<'a> {
    tel: &'a Telemetry,
    idx: usize,
    track: u32,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tel.close_span(self.idx, self.track);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.add("a", 2);
        t.incr("a");
        t.set("b", 7);
        t.set_max("b", 3);
        t.set_max("b", 11);
        assert_eq!(t.counter("a"), Some(3));
        assert_eq!(t.counter("b"), Some(11));
        assert_eq!(t.counter("missing"), None);
        assert!(t.call_count() >= 5);
    }

    #[test]
    fn spans_nest_and_close() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert!(spans.iter().all(|s| s.closed));
        // The inner span is contained in the outer one.
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans[1].start_ns + spans[1].dur_ns <= spans[0].start_ns + spans[0].dur_ns);
    }

    #[test]
    fn tracks_have_independent_depth() {
        let t = Telemetry::new();
        let _a = t.span_track("w0", "worker", 1);
        let b = t.span_track("w1", "worker", 2);
        drop(b);
        let spans = t.spans();
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 0);
    }

    #[test]
    fn set_track_scopes_and_restores() {
        let t = Telemetry::new();
        assert_eq!(current_track(), 0);
        {
            let _g = set_track(3);
            assert_eq!(current_track(), 3);
            let _s = t.span("on three");
            {
                let _g2 = set_track(5);
                let _s2 = t.span_cat("on five", "worker");
            }
            assert_eq!(current_track(), 3);
        }
        assert_eq!(current_track(), 0);
        let spans = t.spans();
        assert_eq!(spans[0].track, 3);
        assert_eq!(spans[1].track, 5);
        // Independent tracks: both spans sit at depth 0 of their track.
        assert_eq!(spans[1].depth, 0);
    }

    #[test]
    fn open_spans_report_partial_duration() {
        let t = Telemetry::new();
        let _open = t.span("open");
        let spans = t.spans();
        assert!(!spans[0].closed);
    }
}
