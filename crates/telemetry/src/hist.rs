//! Log-scale histograms.
//!
//! Values are bucketed by their binary magnitude: bucket 0 holds exactly
//! the value 0, bucket `i` (1 ≤ i ≤ 64) holds values in
//! `[2^(i-1), 2^i - 1]`, so bucket 64 ends at `u64::MAX`. Sixty-five
//! buckets cover the whole `u64` range with no saturation and constant
//! memory, which is what a hot path wants from a distribution sketch.

/// Number of buckets (value 0 plus one per binary magnitude).
pub const N_BUCKETS: usize = 65;

/// A fixed-shape log-scale histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count per bucket.
    pub buckets: [u64; N_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for a value.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive value range of bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < N_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another histogram into this one (bucket-wise saturating
    /// add). The shape is fixed, so any two histograms merge; the report
    /// layer uses this to combine per-track span distributions.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate value at quantile `q` (clamped to `[0, 1]`): the
    /// upper bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, refined by the recorded min/max so single-value
    /// histograms report exactly that value. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1).min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                // The bucket's observations are bounded by the recorded
                // max, so report the tighter of the two upper bounds.
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(index, low, high, count)` rows.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (i, lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        assert_eq!(Histogram::bucket_index(0), 0);
        let mut h = Histogram::new();
        h.observe(0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn u64_max_goes_to_last_bucket() {
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.max, u64::MAX);
        // A second MAX saturates the sum instead of wrapping.
        h.observe(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn power_of_two_boundaries() {
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn ranges_partition_u64() {
        // Each bucket's range starts where the previous ended + 1.
        let mut next = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(lo, next, "bucket {i} must start at {next}");
            assert!(hi >= lo);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "last bucket must end at u64::MAX");
        // Every value's bucket contains it.
        for v in [0, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0);
        }
    }

    #[test]
    fn percentile_of_single_bucket_is_exact() {
        // All observations share one bucket; the recorded max tightens
        // the bucket bound down to the exact value.
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.observe(9);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), 9);
        }
        // A single zero observation reports zero.
        let mut z = Histogram::new();
        z.observe(0);
        assert_eq!(z.percentile(0.5), 0);
    }

    #[test]
    fn percentile_splits_two_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.observe(10); // bucket [8, 15]
        }
        for _ in 0..10 {
            h.observe(1000); // bucket [512, 1023]
        }
        assert_eq!(h.percentile(0.5), 15);
        assert_eq!(h.percentile(0.9), 15);
        assert_eq!(h.percentile(0.95), 1000); // capped by max
        assert_eq!(h.percentile(1.0), 1000);
        // Quantiles outside [0, 1] clamp instead of panicking.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.observe(5);
        a.observe(100);
        let mut b = Histogram::new();
        b.observe(2);
        b.observe(1_000_000);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 1_000_107);
        assert_eq!(a.min, 2);
        assert_eq!(a.max, 1_000_000);
        assert_eq!(a.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.observe(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
        assert!(Histogram::new().is_empty());
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = Histogram::new();
        a.observe(u64::MAX);
        a.observe(u64::MAX); // sum already saturated
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.sum, u64::MAX);
        assert_eq!(b.count, 4);
        // Bucket counts saturate too.
        let mut c = Histogram::new();
        c.buckets[3] = u64::MAX;
        c.count = u64::MAX;
        let mut d = c.clone();
        d.merge(&c);
        assert_eq!(d.buckets[3], u64::MAX);
        assert_eq!(d.count, u64::MAX);
    }

    #[test]
    fn stats_track_observations() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 15] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 30);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 15);
        assert!((h.mean() - 10.0).abs() < 1e-12);
        assert_eq!(h.nonzero_buckets().len(), 2); // 5 → [4,7]; 10 and 15 share [8,15]
    }
}
