//! Run manifests and the on-disk export bundle.
//!
//! A manifest records what a benchmark binary actually ran: the binary
//! name, command line, git revision, start time, wall-clock duration,
//! and one [`RunInfo`] row per experiment (configuration, seed,
//! repetitions). [`write_exports`] writes the full bundle the
//! `--telemetry <dir>` flag promises: `manifest.json`, `metrics.jsonl`,
//! `pipeline.trace.json`, and a human-readable `summary.txt`.

use crate::{chrome, export, json, Telemetry};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One experiment executed by the run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunInfo {
    /// Experiment / benchmark name (e.g. `"fig2:sweep3d"`).
    pub name: String,
    /// Human-readable configuration summary (ranks, threads, noise, …).
    pub config: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of repetitions.
    pub repetitions: u32,
}

/// The run manifest written as `manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Binary name (e.g. `"fig2"`).
    pub bin: String,
    /// Full command line as invoked.
    pub argv: Vec<String>,
    /// Git revision of the working tree, or `"unknown"`.
    pub git_rev: String,
    /// Unix timestamp (seconds) when the run started.
    pub started_unix: u64,
    /// Total wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// One row per experiment executed.
    pub runs: Vec<RunInfo>,
}

impl Manifest {
    /// A manifest for `bin`, capturing argv and the current time; the
    /// caller fills `runs` and `wall_seconds` before exporting.
    pub fn new(bin: &str) -> Manifest {
        Manifest {
            bin: bin.to_owned(),
            argv: std::env::args().collect(),
            git_rev: git_rev(),
            started_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            wall_seconds: 0.0,
            runs: Vec::new(),
        }
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> String {
        let argv: Vec<String> = self.argv.iter().map(|a| json::string(a)).collect();
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":{},\"config\":{},\"seed\":{},\"repetitions\":{}}}",
                    json::string(&r.name),
                    json::string(&r.config),
                    r.seed,
                    r.repetitions
                )
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bin\": {},", json::string(&self.bin));
        let _ = writeln!(out, "  \"argv\": [{}],", argv.join(", "));
        let _ = writeln!(out, "  \"git_rev\": {},", json::string(&self.git_rev));
        let _ = writeln!(out, "  \"started_unix\": {},", self.started_unix);
        let _ = writeln!(out, "  \"wall_seconds\": {},", json::number(self.wall_seconds));
        let _ = writeln!(out, "  \"runs\": [{}]", runs.join(", "));
        let _ = writeln!(out, "}}");
        out
    }
}

/// The current git revision (short hash, `-dirty` suffix when the tree
/// has modifications), or `"unknown"` when git is unavailable.
pub fn git_rev() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned());
    let Some(rev) = rev else {
        return "unknown".to_owned();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// Write the telemetry bundle to `dir` (created if needed):
/// `manifest.json`, `metrics.jsonl`, `pipeline.trace.json`, `summary.txt`.
pub fn write_exports(dir: &Path, tel: &Telemetry, manifest: &Manifest) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("manifest.json"), manifest.to_json())?;
    std::fs::write(dir.join("metrics.jsonl"), export::metrics_jsonl(tel))?;
    std::fs::write(dir.join("pipeline.trace.json"), chrome::pipeline_trace_json(tel))?;
    std::fs::write(dir.join("summary.txt"), export::summary_table(tel))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_parses() {
        let mut m = Manifest::new("test-bin");
        m.wall_seconds = 1.25;
        m.runs.push(RunInfo {
            name: "fig2:sweep3d".into(),
            config: "4 ranks × 2 threads".into(),
            seed: 1000,
            repetitions: 5,
        });
        let v = json::parse(&m.to_json()).expect("manifest is valid JSON");
        assert_eq!(v.get("bin").unwrap().as_str(), Some("test-bin"));
        assert_eq!(v.get("wall_seconds").unwrap().as_f64(), Some(1.25));
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("seed").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
