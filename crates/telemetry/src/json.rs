//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used by the round-trip tests (and by anyone
//! who wants to post-process an export without external crates).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; they become 0).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing zeros for readability while staying lossless
        // enough for telemetry purposes.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_owned()
        } else {
            s.to_owned()
        }
    } else {
        "0".to_owned()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; large `u64`s lose precision, which
    /// is acceptable for validity checking).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are replaced; the exporters never
                            // emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err("truncated UTF-8".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number {s:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_roundtrip_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let doc = format!("{{\"k\": {}}}", string(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3e2, true, false, null], "b": {"c": "d"}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn number_rendering_is_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert!(parse(&number(123.456)).is_ok());
    }
}
