//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used by the round-trip tests (and by anyone
//! who wants to post-process an export without external crates).
//!
//! The parser is hardened against untrusted input — `nrlt-serve` feeds
//! it bytes straight off a disk that a request named, so a malformed
//! document must come back as an `Err`, never as a crash:
//!
//! * **depth limit** — nesting beyond [`ParseLimits::max_depth`] is an
//!   error instead of a recursion-driven stack overflow (an overflow
//!   aborts the process; it cannot be caught),
//! * **size limit** — documents larger than [`ParseLimits::max_bytes`]
//!   are rejected before a byte is parsed,
//! * **finite numbers only** — `1e999` and friends overflow `f64` to
//!   infinity under `str::parse`; JSON has no Inf/NaN, so non-finite
//!   results are errors (the exporters render them as `0`),
//! * **no trailing garbage** — a document must consume its input.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; they become 0).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing zeros for readability while staying lossless
        // enough for telemetry purposes.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_owned()
        } else {
            s.to_owned()
        }
    } else {
        "0".to_owned()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; large `u64`s lose precision, which
    /// is acceptable for validity checking).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Hard bounds enforced while parsing untrusted documents.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum container nesting (arrays + objects). Exceeding it is an
    /// error — the alternative is a stack overflow, which aborts.
    pub max_depth: usize,
    /// Maximum document size in bytes, checked before parsing.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        // Far above anything the exporters write (the largest committed
        // document is tens of kilobytes; whole bundles are megabytes),
        // far below anything that could exhaust the stack or memory.
        ParseLimits { max_depth: 128, max_bytes: 64 << 20 }
    }
}

/// Parse a complete JSON document under [`ParseLimits::default`].
/// Errors carry a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    parse_with_limits(input, &ParseLimits::default())
}

/// Parse a complete JSON document under explicit [`ParseLimits`].
pub fn parse_with_limits(input: &str, limits: &ParseLimits) -> Result<Value, String> {
    if input.len() > limits.max_bytes {
        return Err(format!(
            "document is {} bytes, limit is {} bytes",
            input.len(),
            limits.max_bytes
        ));
    }
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0, depth: 0, max_depth: limits.max_depth };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are replaced; the exporters never
                            // emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err("truncated UTF-8".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match s.parse::<f64>() {
            // `str::parse` maps overflowing literals like 1e999 to
            // infinity; JSON has no Inf/NaN, so reject them.
            Ok(v) if v.is_finite() => Ok(Value::Num(v)),
            Ok(_) => Err(format!("non-finite number {s:?} at byte {start}")),
            Err(_) => Err(format!("bad number {s:?} at byte {start}")),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(format!("nesting deeper than {} at byte {}", self.max_depth, self.pos));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Render a [`Value`] back to compact JSON. Object members come out in
/// `BTreeMap` (key-sorted) order, so rendering is deterministic — the
/// same parsed document always serializes to the same bytes, which is
/// what lets `nrlt-serve` promise byte-identical responses across
/// concurrent requests.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(&number(*n)),
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\":");
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_roundtrip_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let doc = format!("{{\"k\": {}}}", string(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3e2, true, false, null], "b": {"c": "d"}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_an_overflow() {
        // 100k opens would blow the stack; the limit turns it into Err.
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(parse(&deep_obj).unwrap_err().contains("nesting deeper than"));
    }

    #[test]
    fn depth_limit_is_exact() {
        let limits = ParseLimits { max_depth: 3, ..ParseLimits::default() };
        assert!(parse_with_limits("[[[1]]]", &limits).is_ok());
        assert!(parse_with_limits("[[[[1]]]]", &limits).is_err());
        // Sibling containers don't accumulate depth.
        assert!(parse_with_limits("[[1],[2],[{\"a\":3}]]", &limits).is_ok());
    }

    #[test]
    fn oversized_documents_are_rejected_before_parsing() {
        let limits = ParseLimits { max_bytes: 16, ..ParseLimits::default() };
        assert!(parse_with_limits("[1,2,3]", &limits).is_ok());
        let err = parse_with_limits("[1,2,3,4,5,6,7,8,9]", &limits).unwrap_err();
        assert!(err.contains("limit is 16 bytes"), "{err}");
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        // 1e999 overflows f64 to infinity under str::parse.
        assert!(parse("1e999").unwrap_err().contains("non-finite"));
        assert!(parse("-1e999").unwrap_err().contains("non-finite"));
        // Bare IEEE spellings are not JSON at all.
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        assert!(parse("-Infinity").is_err());
        // Huge-but-finite still parses.
        assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
        // Subnormal underflow to 0 is finite and fine.
        assert_eq!(parse("1e-999").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // The exporters never emit surrogates; untrusted input may.
        // Documented behavior: each lone surrogate decodes to U+FFFD.
        let v = parse(r#""a\ud800b""#).unwrap();
        assert_eq!(v.as_str(), Some("a\u{fffd}b"));
        // Escaped surrogate pairs are not recombined — two replacements.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}\u{fffd}"));
        // Raw (non-escaped) astral characters pass through untouched.
        assert_eq!(parse("\"\u{1f600}\"").unwrap().as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("{} x").unwrap_err().contains("trailing data"));
        assert!(parse("null]").unwrap_err().contains("trailing data"));
        assert!(parse(" {\"a\": 1} \n").is_ok());
    }

    #[test]
    fn render_roundtrips_and_is_deterministic() {
        let doc = r#"{"z": [1, 2.5, true, null], "a": {"nested": "v\"al"}, "m": -3}"#;
        let v = parse(doc).unwrap();
        let rendered = render(&v);
        // Keys come out sorted; numbers re-render canonically.
        assert_eq!(rendered, r#"{"a":{"nested":"v\"al"},"m":-3,"z":[1,2.5,true,null]}"#);
        // Round trip is a fixed point.
        assert_eq!(render(&parse(&rendered).unwrap()), rendered);
    }

    #[test]
    fn number_rendering_is_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert!(parse(&number(123.456)).is_ok());
    }
}
