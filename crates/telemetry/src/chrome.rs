//! Chrome trace-event exporters.
//!
//! Both functions emit the JSON object format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! `{"traceEvents": [...]}` with `ph` = `B`/`E` (nested begin/end),
//! `X` (complete), `i` (instant) and `M` (metadata) records, timestamps
//! in microseconds.
//!
//! [`pipeline_trace_json`] renders the *host-side* telemetry of a run —
//! the pipeline spans recorded through a [`Telemetry`] handle.
//! [`trace_to_chrome`] renders a *simulated* [`Trace`] — whatever the
//! measurement layer produced — with one track (tid) per location. For a
//! physical-clock trace, virtual nanoseconds become microseconds; for a
//! logical-clock trace the Lamport counter values are rendered as-is, so
//! the horizontal axis reads "Lamport time" rather than wall time.

use crate::json;
use crate::Telemetry;
use nrlt_trace::{ClockKind, EventKind, Trace};

/// Render the host-side pipeline spans and counters of a run as a Chrome
/// trace document. Spans become `B`/`E` pairs on their track's tid;
/// counters are attached as `args` of a final instant event so they show
/// up in the UI without needing counter tracks.
pub fn pipeline_trace_json(tel: &Telemetry) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(meta_event(0, 0, "process_name", "nrlt pipeline"));

    let spans = tel.spans();
    let mut tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &track in &tracks {
        let name = if track == 0 { "pipeline".to_owned() } else { format!("worker {}", track - 1) };
        events.push(meta_event(0, track, "thread_name", &name));
    }

    for s in &spans {
        let start_us = ns_to_us(s.start_ns);
        events.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
            json::string(&s.name),
            json::string(&s.cat),
            start_us,
            s.track
        ));
        events.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
            json::string(&s.name),
            json::string(&s.cat),
            ns_to_us(s.start_ns + s.dur_ns),
            s.track
        ));
    }

    // B/E pairs interleave across tracks; the viewer pairs them per tid,
    // but keeping the document globally time-sorted is tidier.
    let counters = tel.counters();
    if !counters.is_empty() {
        let args: Vec<String> =
            counters.iter().map(|(k, v)| format!("{}:{}", json::string(k), v)).collect();
        events.push(format!(
            "{{\"name\":\"counters\",\"cat\":\"pipeline\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
            ns_to_us(tel.elapsed_ns()),
            args.join(",")
        ));
        // Each counter additionally becomes its own counter track, so
        // final values render as bars. Counter-track names pass through
        // the same escaping path as span names (`json::string`).
        for (k, v) in &counters {
            events.push(counter_event(k, "pipeline", &ns_to_us(tel.elapsed_ns()), 0, 0, *v as i64));
        }
    }

    wrap(events)
}

/// Render a simulated [`Trace`] as a Chrome trace document with one
/// track per location.
///
/// * `Enter`/`Leave` become `B`/`E` pairs named after the region.
/// * `CallBurst` becomes a single `X` (complete) slice spanning
///   `[start, time]`, with the call count in `args`.
/// * Sends, receives, and collective completions become instant events.
///
/// Physical timestamps (virtual nanoseconds) are converted to
/// microseconds; logical (Lamport) timestamps are emitted verbatim —
/// one Lamport tick renders as one "microsecond" on an axis that should
/// be read as Lamport time.
pub fn trace_to_chrome(trace: &Trace) -> String {
    let logical = matches!(trace.defs.clock, ClockKind::Logical { .. });
    let clock = trace.defs.clock.name();
    let mut events: Vec<String> = Vec::new();
    events.push(meta_event(0, 0, "process_name", &format!("nrlt trace (clock: {clock})")));

    let ts = |t: u64| -> String {
        if logical {
            format!("{t}")
        } else {
            ns_to_us(t)
        }
    };

    for (i, stream) in trace.streams.iter().enumerate() {
        let loc = trace.defs.location(nrlt_trace::LocationRef(i as u32));
        let tid = i as u32;
        events.push(meta_event(
            0,
            tid,
            "thread_name",
            &format!("rank {} thread {} (core {})", loc.rank, loc.thread, loc.core),
        ));
        for ev in stream {
            match ev.kind {
                EventKind::Enter { region } => {
                    let name = &trace.defs.region(region).name;
                    events.push(format!(
                        "{{\"name\":{},\"cat\":\"region\",\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                        json::string(name),
                        ts(ev.time),
                        tid
                    ));
                }
                EventKind::Leave { region } => {
                    let name = &trace.defs.region(region).name;
                    events.push(format!(
                        "{{\"name\":{},\"cat\":\"region\",\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                        json::string(name),
                        ts(ev.time),
                        tid
                    ));
                }
                EventKind::CallBurst { region, count, start } => {
                    let name = &trace.defs.region(region).name;
                    let dur = if logical {
                        format!("{}", ev.time.saturating_sub(start))
                    } else {
                        ns_to_us(ev.time.saturating_sub(start))
                    };
                    events.push(format!(
                        "{{\"name\":{},\"cat\":\"burst\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"calls\":{}}}}}",
                        json::string(name),
                        ts(start),
                        dur,
                        tid,
                        count
                    ));
                }
                EventKind::SendPost { peer, tag, bytes } => {
                    events.push(instant(
                        "send",
                        "p2p",
                        &ts(ev.time),
                        tid,
                        &format!("\"peer\":{peer},\"tag\":{tag},\"bytes\":{bytes}"),
                    ));
                }
                EventKind::RecvPost { peer, tag, bytes } => {
                    events.push(instant(
                        "recv.post",
                        "p2p",
                        &ts(ev.time),
                        tid,
                        &format!("\"peer\":{peer},\"tag\":{tag},\"bytes\":{bytes}"),
                    ));
                }
                EventKind::RecvComplete { peer, tag, bytes } => {
                    events.push(instant(
                        "recv.complete",
                        "p2p",
                        &ts(ev.time),
                        tid,
                        &format!("\"peer\":{peer},\"tag\":{tag},\"bytes\":{bytes}"),
                    ));
                }
                EventKind::CollectiveEnd { op, bytes, root } => {
                    events.push(instant(
                        &format!("collective.{op:?}"),
                        "collective",
                        &ts(ev.time),
                        tid,
                        &format!("\"bytes\":{bytes},\"root\":{root}"),
                    ));
                }
            }
        }
    }

    wrap(events)
}

/// Assemble trace events into a complete Chrome trace document.
pub fn document(events: Vec<String>) -> String {
    wrap(events)
}

/// One `ph:"C"` counter event. The name goes through the same escaping
/// path as span names, so counter series named after arbitrary strings
/// (regions, phases) can never corrupt the document.
pub fn counter_event(name: &str, cat: &str, ts: &str, pid: u32, tid: u32, value: i64) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{}}}}}",
        json::string(name),
        json::string(cat),
        ts,
        pid,
        tid,
        value
    )
}

/// A `process_name` metadata event for process `pid`.
pub fn process_meta(pid: u32, name: &str) -> String {
    meta_event(pid, 0, "process_name", name)
}

fn wrap(events: Vec<String>) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn meta_event(pid: u32, tid: u32, kind: &str, name: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
        json::string(kind),
        pid,
        tid,
        json::string(name)
    )
}

fn instant(name: &str, cat: &str, ts: &str, tid: u32, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
        json::string(name),
        json::string(cat),
        ts,
        tid,
        args
    )
}

/// Nanoseconds → microseconds with sub-µs precision preserved.
pub fn ns_to_us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_us_preserves_sub_microsecond() {
        assert_eq!(ns_to_us(0), "0");
        assert_eq!(ns_to_us(1_000), "1");
        assert_eq!(ns_to_us(1_500), "1.500");
        assert_eq!(ns_to_us(999), "0.999");
        assert_eq!(ns_to_us(1_234_567), "1234.567");
    }

    #[test]
    fn pipeline_export_is_valid_json() {
        let t = Telemetry::new();
        {
            let _s = t.span("phase \"one\"");
        }
        t.incr("events");
        let doc = pipeline_trace_json(&t);
        let v = json::parse(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // process_name + thread_name + B + E + counters instant + one
        // counter track per counter.
        assert_eq!(evs.len(), 6);
        assert!(evs.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")));
    }

    #[test]
    fn span_and_category_names_are_escaped() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{1} end";
        let t = Telemetry::new();
        {
            let _s = t.span_cat(nasty, nasty);
        }
        t.add(nasty, 3);
        let doc = pipeline_trace_json(&t);
        let v = json::parse(&doc).expect("escaped names still parse");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // The B event round-trips the name and category exactly.
        let b = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .expect("has a B event");
        assert_eq!(b.get("name").unwrap().as_str(), Some(nasty));
        assert_eq!(b.get("cat").unwrap().as_str(), Some(nasty));
        // The counter name survives as an args key of the instant event.
        let i = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .expect("has an instant event");
        assert!(i.get("args").unwrap().get(nasty).is_some());
        // Counter-track names take the same escaping path as span names:
        // the C event round-trips the nasty name exactly.
        let c = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .expect("has a counter event");
        assert_eq!(c.get("name").unwrap().as_str(), Some(nasty));
        assert_eq!(c.get("args").unwrap().get("value").and_then(|v| v.as_f64()), Some(3.0));
    }

    #[test]
    fn counter_event_builder_escapes_names() {
        let nasty = "numa\"0\\ bw\n";
        let ev = counter_event(nasty, nasty, "12.5", 3, 1, -7);
        let v = json::parse(&ev).expect("counter event parses");
        assert_eq!(v.get("name").unwrap().as_str(), Some(nasty));
        assert_eq!(v.get("cat").unwrap().as_str(), Some(nasty));
        assert_eq!(v.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(v.get("args").unwrap().get("value").and_then(|x| x.as_f64()), Some(-7.0));
    }

    #[test]
    fn trace_region_names_are_escaped() {
        use nrlt_trace::{
            ClockKind, Definitions, Event, LocationDef, RegionDef, RegionRef, RegionRole,
        };
        let nasty = "kern\"el\\ {weird}\nname";
        let defs = Definitions {
            regions: std::sync::Arc::new(vec![RegionDef {
                name: nasty.into(),
                role: RegionRole::Function,
            }]),
            locations: std::sync::Arc::new(vec![LocationDef { rank: 0, thread: 0, core: 0 }]),
            threads_per_rank: 1,
            clock: ClockKind::Physical,
        };
        let stream = vec![
            Event::new(0, EventKind::Enter { region: RegionRef(0) }),
            Event::new(10, EventKind::CallBurst { region: RegionRef(0), count: 2, start: 5 }),
            Event::new(20, EventKind::Leave { region: RegionRef(0) }),
        ];
        let trace = Trace { defs, streams: vec![stream.into()] };
        let doc = trace_to_chrome(&trace);
        let v = json::parse(&doc).expect("escaped region names still parse");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let named: Vec<&str> = evs
            .iter()
            .filter(|e| {
                matches!(e.get("ph").and_then(|p| p.as_str()), Some("B") | Some("E") | Some("X"))
            })
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(named, vec![nasty; 3]);
    }
}
