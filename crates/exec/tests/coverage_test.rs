//! Coverage tests for engine paths the main suites don't hit:
//! rooted collectives, MPI_Barrier, chunked/guided schedules,
//! single-nowait, replicated burst kernels, and multi-node runs.

use nrlt_exec::{execute, EventInfo, ExecConfig, NullObserver, Observer, RuntimeKind, WorkItem};
use nrlt_prog::{Cost, IterCost, ProgramBuilder, Schedule};
use nrlt_sim::{JobLayout, Location, NoiseConfig, VirtualDuration, VirtualTime};

fn cfg(ranks: u32, tpr: u32, nodes: u32) -> ExecConfig {
    ExecConfig::jureca(nodes, JobLayout::block(ranks, tpr), 9).with_noise(NoiseConfig::silent())
}

#[derive(Default)]
struct EventLog(Vec<(Location, String)>);
impl Observer for EventLog {
    fn on_work(&mut self, _: Location, _: &WorkItem) -> VirtualDuration {
        VirtualDuration::ZERO
    }
    fn on_runtime(&mut self, _: Location, _: RuntimeKind, _: VirtualDuration) {}
    fn on_spin(&mut self, _: Location, _: VirtualDuration) {}
    fn on_event(&mut self, l: Location, _: VirtualTime, i: &EventInfo) -> VirtualDuration {
        self.0.push((l, format!("{i:?}")));
        VirtualDuration::ZERO
    }
    fn piggyback(&mut self, _: Location) -> u64 {
        0
    }
    fn sync_logical(&mut self, _: Location, _: u64) {}
    fn cache_footprint_per_location(&self) -> u64 {
        0
    }
    fn desync(&self) -> f64 {
        0.0
    }
}

#[test]
fn bcast_and_reduce_complete() {
    let mut pb = ProgramBuilder::new(4);
    for r in 0..4 {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            rb.bcast(0, 4096);
            rb.kernel(Cost::scalar(1_000_000 * (r as u64 + 1)), 0);
            rb.reduce(2, 512);
            rb.mpi_barrier();
        });
    }
    let p = pb.finish();
    p.validate().unwrap();
    let mut log = EventLog::default();
    let res = execute(&p, &cfg(4, 1, 1), &mut log);
    assert!(res.total > VirtualDuration::ZERO);
    // Three collective completions per rank.
    for r in 0..4 {
        let n = log.0.iter().filter(|(l, e)| l.rank == r && e.contains("CollectiveEnd")).count();
        assert_eq!(n, 3, "rank {r}");
    }
}

#[test]
fn chunked_and_guided_schedules_run() {
    for schedule in [Schedule::StaticChunk(7), Schedule::Guided, Schedule::Dynamic(16)] {
        let mut pb = ProgramBuilder::new(1);
        {
            let mut rb = pb.rank(0);
            rb.scoped("main", |rb| {
                rb.parallel("p", |omp| {
                    omp.for_loop("l", 1000, schedule, IterCost::Uniform(Cost::scalar(10_000)), 0);
                });
            });
        }
        let p = pb.finish();
        let mut log = EventLog::default();
        let res = execute(&p, &cfg(1, 4, 1), &mut log);
        assert!(res.total > VirtualDuration::ZERO, "{schedule:?}");
        // All four threads entered the loop region.
        for t in 0..4 {
            assert!(
                log.0.iter().any(|(l, e)| l.thread == t && e.contains("Enter")),
                "{schedule:?}: thread {t} missing"
            );
        }
    }
}

#[test]
fn multi_node_collectives_cost_more_than_single_node() {
    let build = |ranks: u32| {
        let mut pb = ProgramBuilder::new(ranks);
        for r in 0..ranks {
            let mut rb = pb.rank(r);
            rb.scoped("main", |rb| {
                for _ in 0..100 {
                    rb.allreduce(1 << 16);
                }
            });
        }
        pb.finish()
    };
    // 32 ranks on one node (shared memory) vs 32 ranks over two nodes.
    let p = build(32);
    let single = execute(&p, &cfg(32, 4, 1), &mut NullObserver).total;
    let multi = execute(
        &p,
        &ExecConfig::jureca(2, JobLayout::block(32, 8), 9).with_noise(NoiseConfig::silent()),
        &mut NullObserver,
    )
    .total;
    assert!(multi > single, "inter-node collectives must cost more: {multi} vs {single}");
}

#[test]
fn replicated_burst_emits_per_thread_events() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.parallel("p", |omp| {
            omp.replicated(Cost::scalar(100_000), 0);
            omp.barrier();
        });
    }
    let p = pb.finish();
    let mut log = EventLog::default();
    execute(&p, &cfg(1, 4, 1), &mut log);
    // Explicit barrier events for every thread.
    let barrier_enters = log.0.iter().filter(|(_, e)| e.contains("Enter")).count();
    assert!(barrier_enters >= 4 * 3, "parallel + barriers per thread: {barrier_enters}");
}

#[test]
fn single_nowait_does_not_synchronise() {
    // Not exposed via the builder (which always adds the barrier), so
    // construct the action directly.
    use nrlt_prog::{Action, Kernel, OmpAction, ParallelRegion, RegionKind};
    let mut pb = ProgramBuilder::new(1);
    let p = {
        let mut rb = pb.rank(0);
        rb.enter("main");
        rb.leave();
        let mut prog = pb.finish();
        let region = prog.regions.intern("!$omp parallel @nw", RegionKind::OmpParallel);
        let single = prog.regions.intern("!$omp single @init", RegionKind::OmpSingle);
        prog.ranks[0].insert(
            1,
            Action::Parallel(ParallelRegion {
                region,
                body: vec![OmpAction::Single {
                    region: single,
                    kernel: Kernel::new(Cost::scalar(10_000_000), 0),
                    nowait: true,
                }],
            }),
        );
        prog
    };
    let mut log = EventLog::default();
    let res = execute(&p, &cfg(1, 4, 1), &mut log);
    // Only the executing thread carries the single's work; without the
    // single barrier only the region-end barrier synchronises.
    assert!(res.total > VirtualDuration::from_millis(2));
}

#[test]
fn empty_loop_and_tiny_teams_are_fine() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.parallel("p", |omp| {
                omp.for_loop("empty", 0, Schedule::Static, IterCost::Uniform(Cost::ZERO), 0);
                omp.for_loop(
                    "fewer_iters_than_threads",
                    2,
                    Schedule::Static,
                    IterCost::Uniform(Cost::scalar(1000)),
                    0,
                );
            });
        });
    }
    let p = pb.finish();
    let res = execute(&p, &cfg(1, 8, 1), &mut NullObserver);
    assert!(res.total > VirtualDuration::ZERO);
}
