//! Engine behaviour tests: synchronisation semantics, determinism,
//! observer callback protocol.

use nrlt_exec::{
    execute, execute_prepared, overhead_percent, prepare_regions, EventInfo, ExecConfig,
    NullObserver, Observer, RuntimeKind, WorkItem,
};
use nrlt_prog::{Cost, IterCost, ProgramBuilder, Schedule};
use nrlt_sim::{JobLayout, Location, NoiseConfig, VirtualDuration, VirtualTime};

fn silent_config(ranks: u32, tpr: u32, nodes: u32) -> ExecConfig {
    ExecConfig::jureca(nodes, JobLayout::block(ranks, tpr), 42).with_noise(NoiseConfig::silent())
}

/// Observer that records every callback for assertions.
#[derive(Default)]
struct Recorder {
    events: Vec<(Location, u64, String)>,
    spins: Vec<(Location, VirtualDuration)>,
    syncs: Vec<(Location, u64)>,
    work: Vec<(Location, WorkItem)>,
    runtime_omp: VirtualDuration,
    runtime_mpi: VirtualDuration,
}

impl Observer for Recorder {
    fn on_work(&mut self, loc: Location, w: &WorkItem) -> VirtualDuration {
        self.work.push((loc, *w));
        VirtualDuration::ZERO
    }
    fn on_runtime(&mut self, _loc: Location, kind: RuntimeKind, d: VirtualDuration) {
        match kind {
            RuntimeKind::Mpi => self.runtime_mpi += d,
            RuntimeKind::Omp => self.runtime_omp += d,
        }
    }
    fn on_spin(&mut self, loc: Location, d: VirtualDuration) {
        self.spins.push((loc, d));
    }
    fn on_event(&mut self, loc: Location, now: VirtualTime, info: &EventInfo) -> VirtualDuration {
        self.events.push((loc, now.nanos(), format!("{info:?}")));
        VirtualDuration::ZERO
    }
    fn piggyback(&mut self, _loc: Location) -> u64 {
        7
    }
    fn sync_logical(&mut self, loc: Location, incoming: u64) {
        self.syncs.push((loc, incoming));
    }
    fn cache_footprint_per_location(&self) -> u64 {
        0
    }
    fn desync(&self) -> f64 {
        0.0
    }
}

fn pingpong() -> nrlt_prog::Program {
    let mut pb = ProgramBuilder::new(2);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.kernel(Cost::scalar(1_000_000), 0);
            rb.send(1, 0, 1024);
            rb.recv(1, 1, 1024);
        });
    }
    {
        let mut rb = pb.rank(1);
        rb.scoped("main", |rb| {
            rb.recv(0, 0, 1024);
            rb.send(0, 1, 1024);
        });
    }
    pb.finish()
}

#[test]
fn pingpong_completes_and_orders_times() {
    let p = pingpong();
    p.validate().unwrap();
    let cfg = silent_config(2, 1, 1);
    let mut obs = NullObserver;
    let res = execute(&p, &cfg, &mut obs);
    assert!(res.total > VirtualDuration::ZERO);
    // Rank 1 cannot finish before rank 0 sent (rank 0 computes first).
    assert!(res.rank_end[1] > VirtualTime::ZERO);
}

#[test]
fn late_sender_blocks_receiver_and_spins() {
    let p = pingpong();
    let cfg = silent_config(2, 1, 1);
    let mut rec = Recorder::default();
    execute(&p, &cfg, &mut rec);
    // Rank 1 posted its receive immediately while rank 0 was computing
    // ~222us of work: rank 1 must have spun for roughly that long.
    let spin1: u64 = rec.spins.iter().filter(|(l, _)| l.rank == 1).map(|(_, d)| d.nanos()).sum();
    assert!(spin1 > 100_000, "receiver must wait for the late sender, spun only {spin1}ns");
}

#[test]
fn receive_merges_piggyback_before_completion() {
    let p = pingpong();
    let cfg = silent_config(2, 1, 1);
    let mut rec = Recorder::default();
    execute(&p, &cfg, &mut rec);
    // Both receives must have synced with the sender's piggyback (7).
    let recv_syncs: Vec<_> = rec.syncs.iter().filter(|(_, v)| *v == 7).collect();
    assert!(recv_syncs.len() >= 2, "recv completions must merge piggybacks: {:?}", rec.syncs);
}

#[test]
fn collective_latecomer_makes_others_wait() {
    let mut pb = ProgramBuilder::new(4);
    for r in 0..4 {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            // Rank 3 computes 4x longer before the allreduce.
            let work = if rb.rank_id() == 3 { 8_000_000 } else { 2_000_000 };
            rb.kernel(Cost::scalar(work), 0);
            rb.allreduce(8);
        });
    }
    let p = pb.finish();
    p.validate().unwrap();
    let cfg = silent_config(4, 1, 1);
    let mut rec = Recorder::default();
    let res = execute(&p, &cfg, &mut rec);
    // Ranks 0..2 spun waiting in the collective; rank 3 spun ~0.
    let spin_of = |r: u32| -> u64 {
        rec.spins.iter().filter(|(l, _)| l.rank == r).map(|(_, d)| d.nanos()).sum()
    };
    assert!(spin_of(0) > 1_000_000, "early rank must wait: {}", spin_of(0));
    assert!(spin_of(3) < spin_of(0) / 10, "late rank barely waits");
    // All ranks end at roughly the same time (collective synchronises).
    let ends: Vec<u64> = res.rank_end.iter().map(|t| t.nanos()).collect();
    let spread = ends.iter().max().unwrap() - ends.iter().min().unwrap();
    assert!(spread < 100_000, "collective must synchronise ranks: {ends:?}");
}

#[test]
fn nonblocking_exchange_completes() {
    // Symmetric halo exchange with isend/irecv + waitall.
    let mut pb = ProgramBuilder::new(2);
    for r in 0..2 {
        let peer = 1 - r;
        let mut rb = pb.rank(r);
        rb.scoped("exchange", |rb| {
            rb.irecv(peer, 0, 8192);
            rb.isend(peer, 0, 8192);
            rb.kernel(Cost::scalar(500_000), 0);
            rb.waitall();
        });
    }
    let p = pb.finish();
    p.validate().unwrap();
    let mut rec = Recorder::default();
    execute(&p, &silent_config(2, 1, 1), &mut rec);
    // Each rank must see exactly one RecvComplete.
    let completes = rec.events.iter().filter(|(_, _, e)| e.contains("RecvComplete")).count();
    assert_eq!(completes, 2);
}

#[test]
fn parallel_loop_imbalance_shows_in_barrier_spins() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.parallel("work", |omp| {
                // Static ramp: later iterations (thread 3) cost 4x more.
                omp.for_loop(
                    "ramp",
                    400,
                    Schedule::Static,
                    IterCost::Ramp { base: Cost::scalar(100_000), last_factor: 4.0 },
                    0,
                );
            });
        });
    }
    let p = pb.finish();
    let cfg = silent_config(1, 4, 1);
    let mut rec = Recorder::default();
    execute(&p, &cfg, &mut rec);
    // Thread 0 (cheap iterations) spins at the implicit barrier far more
    // than thread 3 (expensive iterations).
    let spin_of = |t: u32| -> u64 {
        rec.spins.iter().filter(|(l, _)| l.thread == t).map(|(_, d)| d.nanos()).sum()
    };
    assert!(
        spin_of(0) > spin_of(3) * 2,
        "thread 0 must wait longer: {} vs {}",
        spin_of(0),
        spin_of(3)
    );
    // Every thread got its share of iterations.
    let iters: u64 = rec.work.iter().map(|(_, w)| w.loop_iters).sum();
    assert_eq!(iters, 400);
}

#[test]
fn dynamic_schedule_balances_the_same_loop() {
    let build = |schedule| {
        let mut pb = ProgramBuilder::new(1);
        {
            let mut rb = pb.rank(0);
            rb.scoped("main", |rb| {
                rb.parallel("work", |omp| {
                    omp.for_loop(
                        "ramp",
                        400,
                        schedule,
                        IterCost::Ramp { base: Cost::scalar(100_000), last_factor: 4.0 },
                        0,
                    );
                });
            });
        }
        pb.finish()
    };
    let cfg = silent_config(1, 4, 1);
    let spin_total = |p: &nrlt_prog::Program| {
        let mut rec = Recorder::default();
        execute(p, &cfg, &mut rec);
        rec.spins.iter().map(|(_, d)| d.nanos()).sum::<u64>()
    };
    let static_spin = spin_total(&build(Schedule::Static));
    let dynamic_spin = spin_total(&build(Schedule::Dynamic(8)));
    assert!(
        dynamic_spin < static_spin / 2,
        "dynamic must reduce barrier waiting: {dynamic_spin} vs {static_spin}"
    );
}

#[test]
fn worker_events_are_emitted_per_thread() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.parallel("pr", |omp| {
            omp.for_loop("l", 64, Schedule::Static, IterCost::Uniform(Cost::scalar(1000)), 0);
        });
    }
    let p = pb.finish();
    let mut rec = Recorder::default();
    execute(&p, &silent_config(1, 4, 1), &mut rec);
    for t in 0..4 {
        let thread_events: Vec<_> = rec.events.iter().filter(|(l, _, _)| l.thread == t).collect();
        assert!(
            thread_events.len() >= 6,
            "thread {t} must enter/leave parallel, loop, barrier: {thread_events:?}"
        );
        // Timestamps non-decreasing per location.
        let times: Vec<u64> = thread_events.iter().map(|(_, t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "thread {t}: {times:?}");
    }
}

#[test]
fn single_runs_on_first_arriving_thread_only() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.parallel("pr", |omp| {
            omp.single("init", Cost::scalar(100_000), 0);
        });
    }
    let p = pb.finish();
    let mut rec = Recorder::default();
    execute(&p, &silent_config(1, 4, 1), &mut rec);
    let singles =
        rec.events.iter().filter(|(_, _, e)| e.contains("Enter") && e.contains("single")).count();
    // Only region names are in the table; count enters of the single
    // region via work instead: exactly one thread did the kernel.
    assert_eq!(rec.work.len(), 1);
    let _ = singles;
}

#[test]
fn critical_serialises_threads() {
    let mut pb = ProgramBuilder::new(1);
    {
        let mut rb = pb.rank(0);
        rb.parallel("pr", |omp| {
            omp.critical("update", Cost::scalar(1_000_000));
        });
    }
    let p = pb.finish();
    let mut rec = Recorder::default();
    let res = execute(&p, &silent_config(1, 4, 1), &mut rec);
    // 4 threads × ~222us serialised ≈ 889us minimum.
    assert!(res.total.nanos() > 800_000, "critical sections must serialise: {}", res.total);
    // Later threads spun on the lock.
    assert!(!rec.spins.is_empty());
}

#[test]
fn phases_are_timed() {
    let mut pb = ProgramBuilder::new(1);
    let (init, solve) = {
        let mut rb = pb.rank(0);
        let init = rb.phase("init");
        let solve = rb.phase("solve");
        rb.phase_start(init);
        rb.kernel(Cost::scalar(2_000_000), 0);
        rb.phase_end(init);
        rb.phase_start(solve);
        rb.kernel(Cost::scalar(6_000_000), 0);
        rb.phase_end(solve);
        (init, solve)
    };
    let p = pb.finish();
    let res = execute(&p, &silent_config(1, 1, 1), &mut NullObserver);
    let ti = res.phase_max(init);
    let ts = res.phase_max(solve);
    assert!(ts > ti.scale(2.5) && ts < ti.scale(3.5), "solve ~3x init: {ti} vs {ts}");
}

#[test]
fn same_seed_is_bit_reproducible() {
    let p = pingpong();
    let cfg = ExecConfig::jureca(1, JobLayout::block(2, 1), 5);
    let r1 = execute(&p, &cfg, &mut NullObserver);
    let r2 = execute(&p, &cfg, &mut NullObserver);
    assert_eq!(r1, r2);
}

#[test]
fn different_seeds_vary_with_noise() {
    let mut pb = ProgramBuilder::new(2);
    for r in 0..2 {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            for _ in 0..20 {
                rb.kernel(Cost::scalar(10_000_000).with_mem_bytes(1 << 22), 1 << 22);
                rb.allreduce(8);
            }
        });
    }
    let p = pb.finish();
    let base = ExecConfig::jureca(1, JobLayout::block(2, 1), 1);
    let r1 = execute(&p, &base, &mut NullObserver);
    let r2 = execute(&p, &base.clone().with_seed(2), &mut NullObserver);
    assert_ne!(r1.total, r2.total, "noise must differ across seeds");
    // Silent runs are seed-independent.
    let s1 = execute(&p, &base.clone().with_noise(NoiseConfig::silent()), &mut NullObserver);
    let s2 = execute(
        &p,
        &base.clone().with_seed(2).with_noise(NoiseConfig::silent()),
        &mut NullObserver,
    );
    assert_eq!(s1.total, s2.total);
}

#[test]
fn event_overhead_slows_the_run() {
    struct Expensive;
    impl Observer for Expensive {
        fn on_work(&mut self, _: Location, _: &WorkItem) -> VirtualDuration {
            VirtualDuration::ZERO
        }
        fn on_runtime(&mut self, _: Location, _: RuntimeKind, _: VirtualDuration) {}
        fn on_spin(&mut self, _: Location, _: VirtualDuration) {}
        fn on_event(&mut self, _: Location, _: VirtualTime, _: &EventInfo) -> VirtualDuration {
            VirtualDuration::from_micros(10)
        }
        fn piggyback(&mut self, _: Location) -> u64 {
            0
        }
        fn sync_logical(&mut self, _: Location, _: u64) {}
        fn cache_footprint_per_location(&self) -> u64 {
            0
        }
        fn desync(&self) -> f64 {
            0.0
        }
    }
    let p = pingpong();
    let cfg = silent_config(2, 1, 1);
    let fast = execute(&p, &cfg, &mut NullObserver);
    let slow = execute(&p, &cfg, &mut Expensive);
    let ovh = overhead_percent(fast.total, slow.total);
    assert!(ovh > 5.0, "per-event cost must show as overhead: {ovh:.2}%");
}

#[test]
fn prepared_regions_path_works() {
    let p = pingpong();
    let regions = prepare_regions(&p);
    assert!(regions.find("MPI_Send").is_some());
    let cfg = silent_config(2, 1, 1);
    let res = execute_prepared(&p, &regions, &cfg, &mut NullObserver);
    assert!(res.total > VirtualDuration::ZERO);
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_is_detected() {
    // Both ranks recv first: classic deadlock.
    let mut pb = ProgramBuilder::new(2);
    pb.rank(0).recv(1, 0, 8);
    pb.rank(0).send(1, 1, 8);
    pb.rank(1).recv(0, 1, 8);
    pb.rank(1).send(0, 0, 8);
    let p = pb.finish();
    execute(&p, &silent_config(2, 1, 1), &mut NullObserver);
}

#[test]
fn rendezvous_send_blocks_until_recv() {
    let big = 4 << 20; // rendezvous
    let mut pb = ProgramBuilder::new(2);
    {
        let mut rb = pb.rank(0);
        rb.send(1, 0, big);
    }
    {
        let mut rb = pb.rank(1);
        rb.kernel(Cost::scalar(50_000_000), 0); // ~11ms before posting recv
        rb.recv(0, 0, big);
    }
    let p = pb.finish();
    let mut rec = Recorder::default();
    execute(&p, &silent_config(2, 1, 1), &mut rec);
    let sender_spin: u64 =
        rec.spins.iter().filter(|(l, _)| l.rank == 0).map(|(_, d)| d.nanos()).sum();
    assert!(sender_spin > 5_000_000, "late receiver must block sender: {sender_spin}ns");
}
