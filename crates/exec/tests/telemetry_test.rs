//! Self-telemetry threading: proof that telemetry is strictly opt-in
//! (a `None` run performs zero instrumentation work) and that the
//! counters the engine reports reflect what actually happened.

use nrlt_exec::{execute, execute_telemetry, ExecConfig, NullObserver};
use nrlt_prog::{Cost, ProgramBuilder};
use nrlt_sim::{JobLayout, NoiseConfig};
use nrlt_telemetry::Telemetry;

fn silent_config(ranks: u32, tpr: u32) -> ExecConfig {
    ExecConfig::jureca(1, JobLayout::block(ranks, tpr), 42).with_noise(NoiseConfig::silent())
}

fn pingpong() -> nrlt_prog::Program {
    let mut pb = ProgramBuilder::new(2);
    {
        let mut rb = pb.rank(0);
        rb.scoped("main", |rb| {
            rb.kernel(Cost::scalar(1_000_000), 0);
            rb.send(1, 0, 1024);
            rb.recv(1, 1, 1024);
            rb.mpi_barrier();
        });
    }
    {
        let mut rb = pb.rank(1);
        rb.scoped("main", |rb| {
            rb.recv(0, 0, 1024);
            rb.send(0, 1, 1024);
            rb.mpi_barrier();
        });
    }
    pb.finish()
}

#[test]
fn none_telemetry_performs_no_instrumentation_work() {
    // The probe: a Telemetry handle that exists but is passed as `None`.
    // If the engine did any recording "just in case", call_count would
    // move. It must stay exactly zero.
    let tel = Telemetry::new();
    let p = pingpong();
    let cfg = silent_config(2, 1);
    let r = execute_telemetry(&p, &cfg, &mut NullObserver, None);
    assert!(r.total.nanos() > 0);
    assert_eq!(tel.call_count(), 0, "a None-telemetry run must record nothing");
    assert!(tel.counters().is_empty());
    assert!(tel.spans().is_empty());
}

#[test]
fn telemetry_does_not_perturb_results() {
    let p = pingpong();
    let cfg = silent_config(2, 1);
    let plain = execute(&p, &cfg, &mut NullObserver);
    let tel = Telemetry::new();
    let observed = execute_telemetry(&p, &cfg, &mut NullObserver, Some(&tel));
    assert_eq!(plain.total, observed.total);
    assert_eq!(plain.rank_end, observed.rank_end);
}

fn counter(c: &[(String, u64)], name: &str) -> u64 {
    c.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("missing counter {name}")).1
}

#[test]
fn engine_counters_reflect_the_run() {
    let p = pingpong();
    let cfg = silent_config(2, 1);
    let tel = Telemetry::new();
    execute_telemetry(&p, &cfg, &mut NullObserver, Some(&tel));
    assert!(tel.call_count() > 0);
    let c = tel.counters();
    assert!(counter(&c, "engine.events") > 0, "events must be counted");
    assert_eq!(counter(&c, "engine.messages_matched"), 2, "two matches");
    assert_eq!(counter(&c, "engine.collectives_resolved"), 1, "one barrier");
    assert!(counter(&c, "engine.virtual_time_ns") > 0);
    // The execute span closes when the engine returns.
    let spans = tel.spans();
    let s = spans.iter().find(|s| s.name == "engine.execute").expect("engine.execute span");
    assert!(s.closed);
    // Ready-queue depth histogram saw at least one observation.
    let h = tel.histograms();
    let depth =
        h.iter().find(|(n, _)| n == "engine.ready_queue_depth").expect("ready-queue histogram");
    assert!(!depth.1.is_empty());
}
