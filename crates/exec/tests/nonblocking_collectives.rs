//! Non-blocking collectives: MPI_Iallreduce / MPI_Ibarrier posted early
//! and completed in MPI_Waitall, overlapping communication with
//! computation — the communication style the paper's Score-P extension
//! supports on intra-communicators.

use nrlt_exec::{execute, ExecConfig, NullObserver};
use nrlt_prog::{Cost, ProgramBuilder};
use nrlt_sim::{JobLayout, NoiseConfig, VirtualDuration};

fn config(ranks: u32) -> ExecConfig {
    ExecConfig::jureca(1, JobLayout::block(ranks, 1), 5).with_noise(NoiseConfig::silent())
}

#[test]
fn iallreduce_overlaps_with_computation() {
    // Blocking version: compute, allreduce, compute.
    let blocking = {
        let mut pb = ProgramBuilder::new(4);
        for r in 0..4 {
            let mut rb = pb.rank(r);
            rb.scoped("main", |rb| {
                // Rank 3 computes 4x longer before the collective.
                let pre = if r == 3 { 40_000_000 } else { 10_000_000 };
                rb.kernel(Cost::scalar(pre), 0);
                rb.allreduce(8);
                rb.kernel(Cost::scalar(20_000_000), 0);
            });
        }
        pb.finish()
    };
    // Overlapped version: post the iallreduce, compute, then wait.
    let overlapped = {
        let mut pb = ProgramBuilder::new(4);
        for r in 0..4 {
            let mut rb = pb.rank(r);
            rb.scoped("main", |rb| {
                let pre = if r == 3 { 40_000_000 } else { 10_000_000 };
                rb.kernel(Cost::scalar(pre), 0);
                rb.iallreduce(8);
                rb.kernel(Cost::scalar(20_000_000), 0);
                rb.waitall();
            });
        }
        pb.finish()
    };
    blocking.validate().unwrap();
    overlapped.validate().unwrap();
    let rb = execute(&blocking, &config(4), &mut NullObserver);
    let ro = execute(&overlapped, &config(4), &mut NullObserver);
    // The slow rank is the critical path either way.
    let total_diff = rb.total.nanos().abs_diff(ro.total.nanos());
    assert!(total_diff < 200_000, "slow rank unchanged: {} vs {}", rb.total, ro.total);
    // But the early ranks hide their wait behind the post-collective
    // computation and finish ~4.4 ms earlier.
    let saved = rb.rank_end[0].nanos() as i64 - ro.rank_end[0].nanos() as i64;
    assert!(saved > 3_000_000, "rank 0 must finish earlier with overlap: saved {saved}ns");
}

#[test]
fn ibarrier_synchronises_at_the_wait() {
    let mut pb = ProgramBuilder::new(3);
    for r in 0..3 {
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            rb.kernel(Cost::scalar(5_000_000 * (r as u64 + 1)), 0);
            rb.ibarrier();
            rb.kernel(Cost::scalar(1_000_000), 0);
            rb.waitall();
        });
    }
    let p = pb.finish();
    p.validate().unwrap();
    let res = execute(&p, &config(3), &mut NullObserver);
    // Ranks end within one post-compute kernel (~0.22 ms) of each other:
    // the late rank overlaps its kernel after arriving, the early ranks
    // wait for it at the waitall.
    let ends: Vec<u64> = res.rank_end.iter().map(|t| t.nanos()).collect();
    let spread = ends.iter().max().unwrap() - ends.iter().min().unwrap();
    assert!(spread < 300_000, "ibarrier must synchronise at waitall: {ends:?}");
    // Without the barrier the spread would be the full compute skew (2.2 ms).
    assert!(*ends.iter().min().unwrap() > 3_000_000, "early ranks waited: {ends:?}");
}

#[test]
fn mixed_nonblocking_collective_and_p2p_in_one_waitall() {
    let mut pb = ProgramBuilder::new(2);
    for r in 0..2 {
        let peer = 1 - r;
        let mut rb = pb.rank(r);
        rb.scoped("main", |rb| {
            rb.irecv(peer, 3, 2048);
            rb.iallreduce(16);
            rb.isend(peer, 3, 2048);
            rb.kernel(Cost::scalar(2_000_000), 0);
            rb.waitall();
        });
    }
    let p = pb.finish();
    p.validate().unwrap();
    let res = execute(&p, &config(2), &mut NullObserver);
    assert!(res.total > VirtualDuration::ZERO);
}

#[test]
#[should_panic(expected = "deadlock")]
fn missing_participant_deadlocks() {
    // Rank 1 never joins the iallreduce.
    let mut pb = ProgramBuilder::new(2);
    {
        let mut rb = pb.rank(0);
        rb.iallreduce(8);
        rb.waitall();
    }
    {
        let mut rb = pb.rank(1);
        rb.kernel(Cost::scalar(1000), 0);
    }
    let p = pb.finish();
    execute(&p, &config(2), &mut NullObserver);
}
