//! # nrlt-exec — discrete-event replay engine
//!
//! Executes program IR over virtual time on a simulated machine,
//! combining the MPI and OpenMP semantic models with the duration model
//! and noise injection. The measurement system hooks in through the
//! [`Observer`] trait, both *observing* the execution (events, work,
//! runtime time, spinning) and *perturbing* it (per-event overhead,
//! counting overhead, cache footprint, desynchronisation) — the two-way
//! coupling that lets this reproduction exhibit the paper's overhead
//! effects, including negative overheads and cache-pollution skew.

#![warn(missing_docs)]

pub mod config;
pub mod duration;
pub mod engine;
pub mod ladder;
pub mod observer;
pub mod regions;
pub mod result;

pub use config::ExecConfig;
pub use duration::{DurationModel, ExecPhase, KernelProbe};
pub use engine::{
    execute, execute_instrumented, execute_observed, execute_prepared,
    execute_prepared_instrumented, execute_prepared_observed, execute_prepared_telemetry,
    execute_telemetry, WildcardBook, ANY_SOURCE,
};
pub use ladder::LadderQueue;
pub use observer::{EventInfo, NullObserver, Observer, RuntimeKind, WorkItem};
pub use regions::{
    collective_kind, implicit_barrier_of, parallel_regions, prepare_regions, ParallelRegions,
};
pub use result::{overhead_percent, ExecResult};
