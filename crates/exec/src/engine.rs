//! The discrete-event replay engine.
//!
//! Executes a multi-rank program over virtual time. Within a rank,
//! OpenMP parallel regions are simulated locally (all their
//! synchronisation is intra-team); across ranks, MPI operations
//! synchronise through deterministic message matching and collective
//! gathering. The engine is *conservative*: an action's completion time
//! is computed only from already-determined times, so results are
//! independent of processing order and bit-reproducible per seed.
//!
//! The [`Observer`] is invoked at every observable point and may charge
//! overhead, exactly as instrumentation perturbs a real run.

use crate::config::ExecConfig;
use crate::duration::{DurationModel, ExecPhase, KernelProbe};
use crate::ladder::LadderQueue;
use crate::observer::{EventInfo, Observer, RuntimeKind, WorkItem};
use crate::regions::{collective_kind, implicit_barrier_of, parallel_regions, prepare_regions};
use crate::result::ExecResult;
use nrlt_engineprof::{EventKind, RunProf};
use nrlt_mpisim::{message_timing, Channel, CommScope, LinkKind, Matcher};
use nrlt_observe::{NoiseKind, PhaseId as ObsPhase, RunObserve, SeriesId};
use nrlt_ompsim::{simulate_dynamic_prof, static_partition};
use nrlt_prog::{
    Action, Kernel, MpiOp, OmpAction, OmpFor, ParallelRegion, PhaseId, Program, RegionId,
    RegionTable, Schedule,
};
use nrlt_sim::{Location, NoiseModel, Placement, RngFactory, VirtualDuration, VirtualTime};
use nrlt_telemetry::Telemetry;
use nrlt_trace::CollectiveOp;
use std::collections::{BTreeMap, VecDeque};

/// `MPI_ANY_SOURCE` sentinel in trace records.
pub const ANY_SOURCE: u32 = u32::MAX;

/// Execute `program` under `config`, reporting everything to `observer`.
///
/// Returns the application-level timings. The observer accumulates
/// whatever it wants (the tracing observer in `nrlt-measure` builds the
/// event trace).
///
/// Panics on deadlock (with matcher diagnostics) and on structural
/// inconsistencies; run [`Program::validate`] first for friendlier
/// errors.
pub fn execute<O: Observer>(
    program: &Program,
    config: &ExecConfig,
    observer: &mut O,
) -> ExecResult {
    execute_telemetry(program, config, observer, None)
}

/// Like [`execute`], with optional self-telemetry: counters for events
/// dispatched, busy-wait conversions, matches and collectives, a
/// ready-queue depth histogram, and the final virtual time. With `None`
/// the engine performs no telemetry work at all.
pub fn execute_telemetry<O: Observer>(
    program: &Program,
    config: &ExecConfig,
    observer: &mut O,
    tel: Option<&Telemetry>,
) -> ExecResult {
    let regions = prepare_regions(program);
    execute_prepared_telemetry(program, &regions, config, observer, tel)
}

/// Like [`execute`], but with a region table already prepared via
/// [`prepare_regions`] — use this when the observer needs the table to
/// translate region ids (id assignment is deterministic, so both sides
/// agree).
pub fn execute_prepared<O: Observer>(
    program: &Program,
    regions: &RegionTable,
    config: &ExecConfig,
    observer: &mut O,
) -> ExecResult {
    execute_prepared_telemetry(program, regions, config, observer, None)
}

/// [`execute_prepared`] with optional self-telemetry.
pub fn execute_prepared_telemetry<O: Observer>(
    program: &Program,
    regions: &RegionTable,
    config: &ExecConfig,
    observer: &mut O,
    tel: Option<&Telemetry>,
) -> ExecResult {
    execute_prepared_observed(program, regions, config, observer, tel, None)
}

/// Like [`execute_telemetry`], with an optional resource observatory
/// (`nrlt-observe`) recording counter timelines and noise draws from the
/// simulated machine. With `None` the engine performs zero observability
/// work; with `Some`, every record is derived from already-determined
/// virtual times and stateless keyed noise streams, so observing a run
/// never changes its event stream.
pub fn execute_observed<O: Observer>(
    program: &Program,
    config: &ExecConfig,
    observer: &mut O,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
) -> ExecResult {
    let regions = prepare_regions(program);
    execute_prepared_observed(program, &regions, config, observer, tel, obs)
}

/// [`execute_prepared_telemetry`] plus the optional resource observatory
/// of [`execute_observed`].
pub fn execute_prepared_observed<O: Observer>(
    program: &Program,
    regions: &RegionTable,
    config: &ExecConfig,
    observer: &mut O,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
) -> ExecResult {
    execute_prepared_instrumented(program, regions, config, observer, tel, obs, None)
}

/// Like [`execute_observed`], with an optional engine self-profiler
/// (`nrlt-engineprof`) accounting per-event-kind costs, queue
/// occupancy, and hot-loop allocations. With `None` the engine performs
/// zero profiling work — no counter struct is ever constructed.
/// Profiling reads only already-determined state, so it never changes
/// the event stream or the result.
pub fn execute_instrumented<O: Observer>(
    program: &Program,
    config: &ExecConfig,
    observer: &mut O,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
    prof: Option<&RunProf>,
) -> ExecResult {
    let regions = prepare_regions(program);
    execute_prepared_instrumented(program, &regions, config, observer, tel, obs, prof)
}

/// [`execute_prepared_observed`] plus the optional engine self-profiler
/// of [`execute_instrumented`].
pub fn execute_prepared_instrumented<O: Observer>(
    program: &Program,
    regions: &RegionTable,
    config: &ExecConfig,
    observer: &mut O,
    tel: Option<&Telemetry>,
    obs: Option<&RunObserve>,
    prof: Option<&RunProf>,
) -> ExecResult {
    assert_eq!(
        program.n_ranks(),
        config.layout.ranks,
        "program rank count must match the job layout"
    );
    let _span = tel.map(|t| t.span_cat("engine.execute", "exec"));
    let _frame = nrlt_telemetry::sample::frame(nrlt_telemetry::sample::frames::ENGINE_RUN);
    let mut engine = Engine::new(program, regions, config, observer, tel, obs, prof);
    engine.run();
    engine.into_result()
}

/// What a request is waiting for.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReqKind {
    Send,
    Recv,
    /// A non-blocking collective; the index into `Engine::collectives`.
    Collective(usize),
}

/// One non-blocking (or internally blocking) communication request.
#[derive(Debug, Clone)]
struct Request {
    kind: ReqKind,
    peer: u32,
    tag: u32,
    bytes: u64,
    /// Send: call-return time. Recv: data-arrival time. Collective:
    /// operation completion time.
    completion: Option<VirtualTime>,
    /// Recv/collective: incoming logical-clock value to merge.
    piggyback: u64,
    consumed: bool,
}

/// Payload the matcher carries for the send side.
#[derive(Debug, Clone, Copy)]
struct SendInfo {
    rank: u32,
    req: usize,
    post: VirtualTime,
    piggyback: u64,
}

/// Payload the matcher carries for the receive side.
#[derive(Debug, Clone, Copy)]
struct RecvInfo {
    rank: u32,
    req: usize,
    post: VirtualTime,
}

#[derive(Debug, Clone, Copy)]
enum WaitKind {
    BlockingRecv { req: usize },
    BlockingSend { req: usize },
    Waitall,
}

#[derive(Debug, Clone, Copy)]
enum Blocked {
    Wait { since: VirtualTime, kind: WaitKind },
    Collective { since: VirtualTime, index: usize },
}

#[derive(Debug)]
struct RankState {
    cursor: usize,
    time: VirtualTime,
    pending: Vec<Request>,
    blocked: Option<Blocked>,
    coll_seq: usize,
    done: bool,
}

/// Virtual-time width of one ladder bucket (1 ms). Ranks of one job stay
/// within a few milliseconds of each other between synchronisations, so
/// the ready list rarely spills past the ring's 64-bucket horizon.
const LADDER_BUCKET_NS: u64 = 1_000_000;

/// Dense slots for the MPI API regions the engine resolves per op.
/// Index = [`mpi_slot`]; replaces the old name-keyed ordered map with a
/// flat arena — the op → region step is one array load in the hot loop.
const MPI_REGION_NAMES: [&str; 13] = [
    "MPI_Send",
    "MPI_Recv",
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Waitall",
    "MPI_Barrier",
    "MPI_Allreduce",
    "MPI_Alltoall",
    "MPI_Allgather",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Iallreduce",
    "MPI_Ibarrier",
];

/// The [`MPI_REGION_NAMES`] slot of an op (`RecvAny` shares `MPI_Recv`).
fn mpi_slot(op: &MpiOp) -> usize {
    match op {
        MpiOp::Send { .. } => 0,
        MpiOp::Recv { .. } | MpiOp::RecvAny { .. } => 1,
        MpiOp::Isend { .. } => 2,
        MpiOp::Irecv { .. } => 3,
        MpiOp::Waitall => 4,
        MpiOp::Barrier => 5,
        MpiOp::Allreduce { .. } => 6,
        MpiOp::Alltoall { .. } => 7,
        MpiOp::Allgather { .. } => 8,
        MpiOp::Bcast { .. } => 9,
        MpiOp::Reduce { .. } => 10,
        MpiOp::Iallreduce { .. } => 11,
        MpiOp::Ibarrier => 12,
    }
}

/// Per-channel FIFO sequence numbers behind the stable noise keys.
///
/// Channels are interned into dense ids on first use (the cold path);
/// every later match bumps a slot in a flat `Vec` instead of walking an
/// ordered map. The sequence assigned to a given message is a pure
/// function of the per-channel match order, so the interning order —
/// which does depend on engine processing order — never leaks into a
/// result.
#[derive(Debug, Default)]
struct ChannelArena {
    ids: BTreeMap<Channel, u32>,
    seq: Vec<u64>,
}

impl ChannelArena {
    /// Next FIFO sequence number of `channel` (0 on first use).
    fn next_seq(&mut self, channel: Channel) -> u64 {
        let n = self.seq.len();
        let id = *self.ids.entry(channel).or_insert(n as u32);
        if id as usize == n {
            self.seq.push(0);
        }
        let s = self.seq[id as usize];
        self.seq[id as usize] += 1;
        s
    }

    /// Number of distinct channels seen.
    fn len(&self) -> usize {
        self.seq.len()
    }
}

/// Blocked wildcard receives, FIFO per (dst rank, tag).
///
/// Wildcards are rare (none in the benchmark programs), so the book is a
/// flat probe-by-scan arena rather than a map, and the total occupancy
/// is maintained incrementally — the hot loop's gauges read a counter
/// instead of summing queue lengths. Generic over the queued payload so
/// the microbenchmarks can exercise the matching structure directly.
#[derive(Debug)]
pub struct WildcardBook<T> {
    entries: Vec<((u32, u32), VecDeque<T>)>,
    depth: usize,
}

impl<T> Default for WildcardBook<T> {
    fn default() -> WildcardBook<T> {
        WildcardBook { entries: Vec::new(), depth: 0 }
    }
}

impl<T> WildcardBook<T> {
    /// Queue a blocked wildcard receive on (dst, tag).
    /// Returns true when a new (dst, tag) entry had to be created.
    pub fn push(&mut self, key: (u32, u32), info: T) -> bool {
        self.depth += 1;
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, q)) => {
                q.push_back(info);
                false
            }
            None => {
                self.entries.push((key, VecDeque::from([info])));
                true
            }
        }
    }

    /// Dequeue the oldest waiter on (dst, tag), if any.
    pub fn pop(&mut self, key: (u32, u32)) -> Option<T> {
        let info =
            self.entries.iter_mut().find(|(k, _)| *k == key).and_then(|(_, q)| q.pop_front());
        self.depth -= info.is_some() as usize;
        info
    }

    /// Total waiters across all (dst, tag) keys, maintained incrementally.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Reusable per-engine scratch buffers (see `Engine::scratch`).
#[derive(Debug, Default)]
struct Scratch {
    /// Per-thread team times of the active parallel region.
    tt: Vec<VirtualTime>,
    /// Per-thread ready times (seconds) for dynamic scheduling.
    ready: Vec<f64>,
    /// Per-thread (cost, duration, extra instructions) chunk logs.
    chunk_log: Vec<Vec<(nrlt_prog::Cost, VirtualDuration, u64)>>,
    /// Per-thread first kernel instance number of the loop.
    inst_base: Vec<u64>,
    /// Per-thread chunk counters.
    counters: Vec<u64>,
    /// Thread arrival order for critical sections.
    order: Vec<u32>,
}

#[derive(Debug)]
struct CollInstance {
    op: CollectiveOp,
    bytes: u64,
    root: u32,
    arrivals: Vec<Option<(VirtualTime, u64)>>,
    arrived: u32,
    /// Per rank: the pending-request slot of a *non-blocking* join.
    nb_reqs: Vec<Option<usize>>,
    /// Filled at resolution: (last arrival, per-rank completion, max piggyback).
    resolution: Option<(VirtualTime, Vec<VirtualTime>, u64)>,
}

/// Pre-interned observatory names. Built once per observed run so the
/// per-event recording paths pass `Copy` ids instead of formatting and
/// hashing series names per sample (the dominant cost of the observed
/// hot path before interning).
struct ObsIds {
    /// `rank{r}.progress_ns`, indexed by rank.
    progress: Vec<SeriesId>,
    /// `numa{d}.bw_threads`, indexed by global NUMA domain.
    numa_bw: Vec<SeriesId>,
    /// `socket{s}.l3_dram_permille`, indexed by global socket.
    socket_l3: Vec<SeriesId>,
    match_sends: SeriesId,
    match_recvs: SeriesId,
    wildcard_queue: SeriesId,
    wire_sharedmem: SeriesId,
    wire_network: SeriesId,
    coll_alg: SeriesId,
    team_threads: SeriesId,
    loop_chunks: SeriesId,
    ready_spread: SeriesId,
    /// Program phase names, indexed by `PhaseId`.
    phases: Vec<ObsPhase>,
    /// The empty "outside any phase" name.
    no_phase: ObsPhase,
}

impl ObsIds {
    fn new(obs: &RunObserve, program: &Program, placement: &Placement) -> ObsIds {
        let machine = placement.machine();
        let ranks = placement.layout().ranks;
        let sockets = machine.nodes * machine.spec.sockets;
        ObsIds {
            progress: (0..ranks).map(|r| obs.series(&format!("rank{r}.progress_ns"))).collect(),
            numa_bw: (0..machine.total_numa())
                .map(|d| obs.series(&format!("numa{d}.bw_threads")))
                .collect(),
            socket_l3: (0..sockets)
                .map(|s| obs.series(&format!("socket{s}.l3_dram_permille")))
                .collect(),
            match_sends: obs.series("mpi.match_queue_sends"),
            match_recvs: obs.series("mpi.match_queue_recvs"),
            wildcard_queue: obs.series("mpi.wildcard_queue"),
            wire_sharedmem: obs.series("net.sharedmem.wire_ns"),
            wire_network: obs.series("net.network.wire_ns"),
            coll_alg: obs.series("net.collective_alg_ns"),
            team_threads: obs.series("omp.team_threads"),
            loop_chunks: obs.series("omp.loop_chunks"),
            ready_spread: obs.series("omp.ready_spread_ns"),
            phases: program.phases.iter().map(|p| obs.phase(p)).collect(),
            no_phase: obs.phase(""),
        }
    }
}

struct Engine<'a, O: Observer> {
    program: &'a Program,
    regions: &'a RegionTable,
    config: &'a ExecConfig,
    observer: &'a mut O,
    placement: Placement,
    noise: NoiseModel,
    footprint: u64,
    desync: f64,
    states: Vec<RankState>,
    matcher: Matcher<SendInfo, RecvInfo>,
    /// Blocked wildcard receives per (dst rank, tag), FIFO, with an
    /// incrementally-maintained total occupancy. No engine state on a
    /// result path may depend on hash iteration order.
    wildcard: WildcardBook<RecvInfo>,
    collectives: Vec<CollInstance>,
    /// Per-channel FIFO sequence numbers (stable noise keys).
    channels: ChannelArena,
    /// MPI API regions by [`mpi_slot`].
    mpi_regions: [Option<RegionId>; 13],
    loc_last: Vec<VirtualTime>,
    kernel_seq: Vec<u64>,
    /// Ready ranks, bucketed by virtual time with FIFO tie-break.
    worklist: LadderQueue<u32>,
    /// Open-phase start times, `[rank][phase id]` (dense arenas; the
    /// result's ordered maps are built once at emission time).
    phase_open: Vec<Vec<Option<VirtualTime>>>,
    /// Accumulated phase totals, `[rank][phase id]`; `None` = the phase
    /// never closed on that rank.
    phase_total: Vec<Vec<Option<VirtualDuration>>>,
    /// Reusable scratch buffers for the OpenMP paths (team times, ready
    /// times, dynamic-chunk logs); cleared and refilled per construct so
    /// a run allocates them once instead of once per parallel region.
    scratch: Scratch,
    /// Self-telemetry sink; `None` means zero instrumentation work.
    tel: Option<&'a Telemetry>,
    /// Resource-observatory sink; `None` means zero observability work.
    obs: Option<&'a RunObserve>,
    /// Pre-interned observatory names; `Some` exactly when `obs` is.
    obs_ids: Option<ObsIds>,
    /// Engine self-profiler sink; `None` means zero profiling work.
    prof: Option<&'a RunProf>,
    /// Per-rank stack of open phases — maintained only when `obs` or
    /// `prof` is `Some`, to tag samples, noise draws, and gauge
    /// timelines with the program phase.
    cur_phase: Vec<Vec<PhaseId>>,
    /// Events dispatched (accumulated locally, flushed once at the end,
    /// so the hot path stays lock-free even with telemetry on).
    n_events: u64,
    /// Busy-wait intervals converted to idle waiting via `on_spin`.
    n_spin_conversions: u64,
    /// Point-to-point matches resolved.
    n_matches: u64,
    /// Collective instances resolved.
    n_collectives: u64,
}

impl<'a, O: Observer> Engine<'a, O> {
    fn new(
        program: &'a Program,
        regions: &'a RegionTable,
        config: &'a ExecConfig,
        observer: &'a mut O,
        tel: Option<&'a Telemetry>,
        obs: Option<&'a RunObserve>,
        prof: Option<&'a RunProf>,
    ) -> Self {
        let placement = Placement::new(config.machine.clone(), config.layout.clone());
        let noise = NoiseModel::new(config.noise.clone(), RngFactory::new(config.seed));
        let n_ranks = config.layout.ranks as usize;
        let n_locs = config.layout.locations() as usize;
        let footprint = observer.cache_footprint_per_location();
        let desync = observer.desync();
        let mpi_regions = std::array::from_fn(|i| regions.find(MPI_REGION_NAMES[i]));
        let n_phases = program.phases.len();
        let obs_ids = obs.map(|o| ObsIds::new(o, program, &placement));
        Engine {
            program,
            regions,
            config,
            observer,
            placement,
            noise,
            footprint,
            desync,
            states: (0..n_ranks)
                .map(|_| RankState {
                    cursor: 0,
                    time: VirtualTime::ZERO,
                    pending: Vec::new(),
                    blocked: None,
                    coll_seq: 0,
                    done: false,
                })
                .collect(),
            matcher: Matcher::new(),
            wildcard: WildcardBook::default(),
            collectives: Vec::new(),
            channels: ChannelArena::default(),
            mpi_regions,
            loc_last: vec![VirtualTime::ZERO; n_locs],
            kernel_seq: vec![0; n_locs],
            worklist: LadderQueue::new(LADDER_BUCKET_NS),
            phase_open: vec![vec![None; n_phases]; n_ranks],
            phase_total: vec![vec![None; n_phases]; n_ranks],
            scratch: Scratch::default(),
            tel,
            obs,
            obs_ids,
            prof,
            cur_phase: vec![Vec::new(); n_ranks],
            n_events: 0,
            n_spin_conversions: 0,
            n_matches: 0,
            n_collectives: 0,
        }
    }

    fn run(&mut self) {
        // Resolved once per run: `None` (no sampling profiler installed)
        // costs one branch per scheduling quantum; `Some` publishes an
        // `engine.rank` frame per quantum (~4 atomics on an owned cache
        // line — ~35k quanta per LULESH rep, far below the noise floor).
        let leaf = nrlt_telemetry::sample::leaf_handle();
        for r in 0..self.states.len() as u32 {
            self.push_work(r);
        }
        while let Some(r) = self.worklist.pop() {
            if let Some(t) = self.tel {
                t.observe("engine.ready_queue_depth", self.worklist.len() as u64 + 1);
            }
            if let Some(p) = self.prof {
                p.gauge(
                    "engine.worklist_depth",
                    self.phase_name(r),
                    self.worklist.len() as i64 + 1,
                );
                p.gauge(
                    "engine.ladder_bucket",
                    self.phase_name(r),
                    self.worklist.current_bucket_len() as i64,
                );
            }
            if let Some(leaf) = &leaf {
                leaf.push(nrlt_telemetry::sample::frames::ENGINE_RANK);
                self.run_rank(r);
                leaf.pop();
            } else {
                self.run_rank(r);
            }
        }
        let stuck: Vec<u32> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(r, _)| r as u32)
            .collect();
        if !stuck.is_empty() {
            panic!(
                "deadlock: ranks {:?} never completed; pending traffic: {}",
                stuck,
                self.matcher.pending_description()
            );
        }
        debug_assert!(self.matcher.is_drained(), "unmatched traffic after completion");
    }

    fn into_result(self) -> ExecResult {
        let total_end = self.loc_last.iter().copied().max().unwrap_or(VirtualTime::ZERO);
        if let Some(t) = self.tel {
            t.add("engine.events", self.n_events);
            t.add("engine.spin_conversions", self.n_spin_conversions);
            t.add("engine.messages_matched", self.n_matches);
            t.add("engine.collectives_resolved", self.n_collectives);
            t.set_max("engine.virtual_time_ns", total_end.nanos());
        }
        if let Some(p) = self.prof {
            p.set_events(self.n_events);
            let s = self.matcher.stats();
            p.hwm("matcher.queued_sends", s.hwm_queued_sends);
            p.hwm("matcher.queued_recvs", s.hwm_queued_recvs);
            p.hwm("matcher.channel_depth", s.hwm_channel_depth);
            p.alloc("matcher.channel_queues", s.queues_created);
            p.hwm("engine.collective_instances", self.collectives.len() as u64);
            p.hwm("engine.channels", self.channels.len() as u64);
            p.alloc("engine.ladder_respreads", self.worklist.respreads());
            p.hwm(
                "rank.pending_requests",
                self.states.iter().map(|s| s.pending.len()).max().unwrap_or(0) as u64,
            );
            p.hwm("scratch.team_times", self.scratch.tt.capacity() as u64);
            p.hwm(
                "scratch.chunk_log",
                self.scratch.chunk_log.iter().map(Vec::capacity).sum::<usize>() as u64,
            );
        }
        // The dense phase arenas are rebuilt as ordered maps once, at
        // emission time: ascending phase-id iteration reproduces the
        // ordering the per-rank BTreeMaps used to maintain on every write.
        let phase_times = self
            .phase_total
            .iter()
            .map(|totals| {
                totals
                    .iter()
                    .enumerate()
                    .filter_map(|(i, d)| d.map(|d| (PhaseId(i as u32), d)))
                    .collect::<BTreeMap<_, _>>()
            })
            .collect();
        ExecResult {
            phase_times,
            rank_end: self.states.iter().map(|s| s.time).collect(),
            total: total_end.saturating_since(VirtualTime::ZERO),
            events: self.n_events,
        }
    }

    // ---- helpers -------------------------------------------------------

    fn loc_index(&self, loc: Location) -> usize {
        self.config.layout.location_index(loc)
    }

    fn next_instance(&mut self, loc: Location) -> u64 {
        let idx = self.loc_index(loc);
        let v = self.kernel_seq[idx];
        self.kernel_seq[idx] += 1;
        v
    }

    /// Record an event on `loc` at time `t` (clamped to the location's
    /// monotone clock), charging the observer's overhead. Returns the
    /// time after the event.
    fn emit(&mut self, loc: Location, t: VirtualTime, info: EventInfo) -> VirtualTime {
        self.n_events += 1;
        let idx = self.loc_index(loc);
        let t = t.max(self.loc_last[idx]);
        let ovh = self.observer.on_event(loc, t, &info);
        let after = t + ovh;
        self.loc_last[idx] = after;
        after
    }

    /// Clamp a proposed time to the location's monotone clock.
    fn clamp(&self, loc: Location, t: VirtualTime) -> VirtualTime {
        t.max(self.loc_last[self.loc_index(loc)])
    }

    /// Enqueue rank `r` for (re)processing, keyed by the rank's current
    /// virtual time so the ladder pops ranks in near-time order.
    fn push_work(&mut self, r: u32) {
        self.worklist.push(self.states[r as usize].time.nanos(), r);
    }

    /// Record the matcher and wildcard queue depths as profiler gauges
    /// under rank `r`'s current phase.
    fn prof_queues(&self, r: u32) {
        if let Some(p) = self.prof {
            let ph = self.phase_name(r);
            self.matcher.profile_queues(p, ph);
            p.gauge("mpi.wildcard_queue", ph, self.wildcard.depth() as i64);
        }
    }

    /// Count an imminent growth of rank `r`'s pending-request vector.
    fn prof_pending_alloc(&self, r: u32) {
        if let Some(p) = self.prof {
            let pending = &self.states[r as usize].pending;
            if pending.len() == pending.capacity() {
                p.alloc("rank.pending", 1);
            }
        }
    }

    fn kernel_duration(
        &self,
        loc: Location,
        cost: &nrlt_prog::Cost,
        working_set: u64,
        phase: ExecPhase,
        instance: u64,
    ) -> VirtualDuration {
        let mut model = DurationModel::new(&self.placement, &self.noise);
        model.footprint_per_location = self.footprint;
        model.desync = self.desync;
        model.kernel_duration_instrumented(loc, cost, working_set, phase, instance, None, self.prof)
    }

    /// [`Engine::kernel_duration`] on the observed path: probes the model
    /// and records contention samples and noise draws at the kernel's
    /// start time. Only called when `obs` is `Some`.
    fn kernel_duration_observed(
        &self,
        loc: Location,
        cost: &nrlt_prog::Cost,
        working_set: u64,
        phase: ExecPhase,
        instance: u64,
        start: VirtualTime,
    ) -> VirtualDuration {
        let obs = self.obs.expect("observed kernel path without a sink");
        let mut model = DurationModel::new(&self.placement, &self.noise);
        model.footprint_per_location = self.footprint;
        model.desync = self.desync;
        let mut probe = KernelProbe::default();
        let d = model.kernel_duration_instrumented(
            loc,
            cost,
            working_set,
            phase,
            instance,
            Some(&mut probe),
            self.prof,
        );
        record_kernel_obs(
            obs,
            self.obs_ids.as_ref().expect("observed path without interned names"),
            &probe,
            cost.mem_bytes,
            loc.rank,
            self.placement.core_of(loc).0 as u64,
            instance,
            self.obs_phase(loc.rank),
            start.nanos(),
            self.n_events,
        );
        d
    }

    /// Innermost open phase of rank `r` (empty outside any phase). Only
    /// meaningful when `obs` or `prof` is `Some` — the stack is not
    /// maintained otherwise.
    fn phase_name(&self, r: u32) -> &str {
        match self.cur_phase[r as usize].last() {
            Some(p) => self.program.phase_name(*p),
            None => "",
        }
    }

    /// Interned id of rank `r`'s innermost open phase. Only meaningful
    /// when `obs` is `Some` (panics otherwise — the observed paths are
    /// the only callers).
    fn obs_phase(&self, r: u32) -> ObsPhase {
        let ids = self.obs_ids.as_ref().expect("observed path without interned names");
        match self.cur_phase[r as usize].last() {
            Some(p) => ids.phases[p.0 as usize],
            None => ids.no_phase,
        }
    }

    /// Sample rank `r`'s progress watermark (its virtual time at a phase
    /// boundary).
    fn observe_progress(&self, r: u32, t: VirtualTime) {
        if let (Some(obs), Some(ids)) = (self.obs, self.obs_ids.as_ref()) {
            obs.sample_id(
                ids.progress[r as usize],
                self.obs_phase(r),
                t.nanos(),
                self.n_events,
                t.nanos() as i64,
            );
        }
    }

    /// Sample the matcher and wildcard queue depths as seen by rank `r`.
    fn observe_queues(&self, r: u32) {
        if let (Some(obs), Some(ids)) = (self.obs, self.obs_ids.as_ref()) {
            let ph = self.obs_phase(r);
            let t_ns = self.states[r as usize].time.nanos();
            obs.sample_batch_id(
                ph,
                t_ns,
                self.n_events,
                &[
                    (ids.match_sends, self.matcher.pending_sends() as i64),
                    (ids.match_recvs, self.matcher.pending_recvs() as i64),
                    (ids.wildcard_queue, self.wildcard.depth() as i64),
                ],
            );
        }
    }

    fn mpi_region(&self, op: &MpiOp) -> RegionId {
        self.mpi_regions[mpi_slot(op)]
            .unwrap_or_else(|| panic!("region for {} not prepared", op.api_name()))
    }

    fn sec(d: f64) -> VirtualDuration {
        VirtualDuration::from_secs_f64(d)
    }

    fn secs_of(t: VirtualTime) -> f64 {
        t.nanos() as f64 * 1e-9
    }

    // ---- rank driver ---------------------------------------------------

    fn run_rank(&mut self, r: u32) {
        if self.states[r as usize].done {
            return;
        }
        if self.states[r as usize].blocked.is_some() && !self.try_unblock(r) {
            return;
        }
        let program = self.program;
        loop {
            let cursor = self.states[r as usize].cursor;
            let actions = &program.ranks[r as usize];
            if cursor >= actions.len() {
                self.states[r as usize].done = true;
                return;
            }
            match &actions[cursor] {
                Action::Enter(region) => {
                    let m = Location::master(r);
                    let t = self.states[r as usize].time;
                    let t = self.emit(m, t, EventInfo::Enter { region: *region });
                    self.states[r as usize].time = t;
                }
                Action::Leave(region) => {
                    let m = Location::master(r);
                    let t = self.states[r as usize].time;
                    let t = self.emit(m, t, EventInfo::Leave { region: *region });
                    self.states[r as usize].time = t;
                }
                Action::Kernel(kernel) => {
                    let m = Location::master(r);
                    let t = self.states[r as usize].time;
                    let t = self.run_kernel(m, kernel, ExecPhase::Serial, t);
                    self.states[r as usize].time = t;
                }
                Action::Parallel(pr) => self.do_parallel(r, pr),
                Action::PhaseStart(p) => {
                    let t = self.states[r as usize].time;
                    self.phase_open[r as usize][p.0 as usize] = Some(t);
                    if self.obs.is_some() || self.prof.is_some() {
                        self.cur_phase[r as usize].push(*p);
                    }
                    if self.obs.is_some() {
                        self.observe_progress(r, t);
                    }
                }
                Action::PhaseEnd(p) => {
                    let t = self.states[r as usize].time;
                    let start = self.phase_open[r as usize][p.0 as usize]
                        .take()
                        .expect("phase end without start (validate the program)");
                    let d = t.saturating_since(start);
                    *self.phase_total[r as usize][p.0 as usize]
                        .get_or_insert(VirtualDuration::ZERO) += d;
                    if self.obs.is_some() {
                        self.observe_progress(r, t);
                    }
                    if self.obs.is_some() || self.prof.is_some() {
                        if let Some(pos) = self.cur_phase[r as usize].iter().rposition(|q| q == p) {
                            self.cur_phase[r as usize].remove(pos);
                        }
                    }
                }
                Action::Mpi(op) => {
                    if self.do_mpi(r, op) {
                        // Cursor advances only when the op finishes.
                        return;
                    }
                    // try_unblock already advanced the cursor.
                    continue;
                }
            }
            self.states[r as usize].cursor += 1;
        }
    }

    /// Run a serial or replicated kernel on `loc` starting at `t`.
    fn run_kernel(
        &mut self,
        loc: Location,
        kernel: &Kernel,
        phase: ExecPhase,
        t: VirtualTime,
    ) -> VirtualTime {
        let inst = self.next_instance(loc);
        let extra = self.observer.counting_instructions(&kernel.cost, 0);
        let mut instrumented = kernel.cost;
        instrumented.instructions += extra;
        let start = self.clamp(loc, t);
        if let Some(p) = self.prof {
            p.enter(EventKind::KernelAdvance);
        }
        let duration = if self.obs.is_some() {
            self.kernel_duration_observed(
                loc,
                &instrumented,
                kernel.working_set,
                phase,
                inst,
                start,
            )
        } else {
            self.kernel_duration(loc, &instrumented, kernel.working_set, phase, inst)
        };
        if let Some(p) = self.prof {
            p.leave(EventKind::KernelAdvance, duration.nanos());
        }
        let work_ovh = self.observer.on_work(
            loc,
            &WorkItem { cost: kernel.cost, loop_iters: 0, duration, extra_instructions: extra },
        );
        let mut t = start + duration + work_ovh;
        if let Some(burst) = kernel.burst {
            t = self.emit(
                loc,
                t,
                EventInfo::Burst { callee: burst.callee, calls: burst.calls, phys_start: start },
            );
        } else {
            let idx = self.loc_index(loc);
            self.loc_last[idx] = self.loc_last[idx].max(t);
        }
        t
    }

    // ---- MPI -----------------------------------------------------------

    /// Execute an MPI op on rank `r`'s master. Returns true if the rank
    /// blocked (the cursor stays on this action until unblocked).
    fn do_mpi(&mut self, r: u32, op: &MpiOp) -> bool {
        let m = Location::master(r);
        let region = self.mpi_region(op);
        let t = self.states[r as usize].time;
        let t = self.emit(m, t, EventInfo::Enter { region });
        self.states[r as usize].time = t;

        match op {
            MpiOp::Send { dest, tag, bytes } => {
                let req = self.post_send(r, *dest, *tag, *bytes);
                self.states[r as usize].blocked = Some(Blocked::Wait {
                    since: self.states[r as usize].time,
                    kind: WaitKind::BlockingSend { req },
                });
                !self.try_unblock(r)
            }
            MpiOp::Recv { src, tag, bytes } => {
                let req = self.post_recv(r, *src, *tag, *bytes);
                self.states[r as usize].blocked = Some(Blocked::Wait {
                    since: self.states[r as usize].time,
                    kind: WaitKind::BlockingRecv { req },
                });
                !self.try_unblock(r)
            }
            MpiOp::RecvAny { tag, bytes } => {
                let req = self.post_recv_any(r, *tag, *bytes);
                self.states[r as usize].blocked = Some(Blocked::Wait {
                    since: self.states[r as usize].time,
                    kind: WaitKind::BlockingRecv { req },
                });
                !self.try_unblock(r)
            }
            MpiOp::Isend { dest, tag, bytes } => {
                self.post_send(r, *dest, *tag, *bytes);
                let t = self.states[r as usize].time;
                let t = self.emit(m, t, EventInfo::Leave { region });
                self.states[r as usize].time = t;
                self.states[r as usize].cursor += 1;
                false
            }
            MpiOp::Irecv { src, tag, bytes } => {
                self.post_recv(r, *src, *tag, *bytes);
                let t = self.states[r as usize].time;
                let t = self.emit(m, t, EventInfo::Leave { region });
                self.states[r as usize].time = t;
                self.states[r as usize].cursor += 1;
                false
            }
            MpiOp::Iallreduce { bytes } => {
                self.post_nonblocking_collective(r, CollectiveOp::Allreduce, *bytes, region);
                false
            }
            MpiOp::Ibarrier => {
                self.post_nonblocking_collective(r, CollectiveOp::Barrier, 0, region);
                false
            }
            MpiOp::Waitall => {
                self.states[r as usize].blocked = Some(Blocked::Wait {
                    since: self.states[r as usize].time,
                    kind: WaitKind::Waitall,
                });
                !self.try_unblock(r)
            }
            _ => {
                // Collective.
                let kind = collective_kind(op).expect("non-collective fell through");
                let (bytes, root) = match op {
                    MpiOp::Barrier => (0, nrlt_trace::NO_ROOT),
                    MpiOp::Allreduce { bytes }
                    | MpiOp::Alltoall { bytes }
                    | MpiOp::Allgather { bytes } => (*bytes, nrlt_trace::NO_ROOT),
                    MpiOp::Bcast { root, bytes } | MpiOp::Reduce { root, bytes } => (*bytes, *root),
                    _ => unreachable!(),
                };
                let index = self.register_collective(r, kind, bytes, root);
                self.states[r as usize].blocked =
                    Some(Blocked::Collective { since: self.states[r as usize].time, index });
                !self.try_unblock(r)
            }
        }
    }

    /// Post a send: emits the post event, charges library overhead,
    /// creates the request and hands it to the matcher. Returns the
    /// request index.
    fn post_send(&mut self, r: u32, dest: u32, tag: u32, bytes: u64) -> usize {
        let m = Location::master(r);
        let piggyback = self.observer.piggyback(m);
        let t = self.states[r as usize].time;
        let t = self.emit(m, t, EventInfo::SendPost { peer: dest, tag, bytes });
        let so = Self::sec(self.config.p2p.send_overhead);
        self.observer.on_runtime(m, RuntimeKind::Mpi, so);
        let t = t + so;
        self.states[r as usize].time = t;
        let req = self.states[r as usize].pending.len();
        let eager = self.config.p2p.is_eager(bytes);
        self.prof_pending_alloc(r);
        self.states[r as usize].pending.push(Request {
            kind: ReqKind::Send,
            peer: dest,
            tag,
            bytes,
            // Eager sends return as soon as the payload is copied out;
            // rendezvous completion is determined at match time.
            completion: eager.then_some(t),
            piggyback: 0,
            consumed: false,
        });
        let channel = Channel { src: r, dst: dest, tag };
        if let Some(mtch) =
            self.matcher.post_send(channel, bytes, SendInfo { rank: r, req, post: t, piggyback })
        {
            self.resolve_match(channel, mtch.send.data, mtch.recv.data, bytes);
        } else if let Some(recv) = self.wildcard.pop((dest, tag)) {
            // A wildcard receive is already blocked on this (dst, tag):
            // hand it the send we just enqueued.
            let send = self
                .matcher
                .take_last_send(channel)
                .expect("the send posted above is still pending");
            self.resolve_match(channel, send.data, recv, bytes);
        }
        self.observe_queues(r);
        self.prof_queues(r);
        req
    }

    /// Post a receive. Returns the request index.
    fn post_recv(&mut self, r: u32, src: u32, tag: u32, bytes: u64) -> usize {
        let m = Location::master(r);
        let t = self.states[r as usize].time;
        let t = self.emit(m, t, EventInfo::RecvPost { peer: src, tag, bytes });
        self.states[r as usize].time = t;
        let req = self.states[r as usize].pending.len();
        self.prof_pending_alloc(r);
        self.states[r as usize].pending.push(Request {
            kind: ReqKind::Recv,
            peer: src,
            tag,
            bytes,
            completion: None,
            piggyback: 0,
            consumed: false,
        });
        let channel = Channel { src, dst: r, tag };
        if let Some(mtch) =
            self.matcher.post_recv(channel, bytes, RecvInfo { rank: r, req, post: t })
        {
            let bytes = mtch.send.bytes;
            self.resolve_match(channel, mtch.send.data, mtch.recv.data, bytes);
        }
        self.observe_queues(r);
        self.prof_queues(r);
        req
    }

    /// Post a wildcard (`MPI_ANY_SOURCE`) receive: matches the earliest
    /// pending send addressed to this rank with this tag, or waits for
    /// the next one. Which message wins is timing-dependent — wildcard
    /// programs therefore lose the logical clocks' repetition invariance
    /// (Section II of the paper).
    fn post_recv_any(&mut self, r: u32, tag: u32, bytes: u64) -> usize {
        let m = Location::master(r);
        let t = self.states[r as usize].time;
        let t = self.emit(m, t, EventInfo::RecvPost { peer: ANY_SOURCE, tag, bytes });
        self.states[r as usize].time = t;
        let req = self.states[r as usize].pending.len();
        self.prof_pending_alloc(r);
        self.states[r as usize].pending.push(Request {
            kind: ReqKind::Recv,
            peer: ANY_SOURCE,
            tag,
            bytes,
            completion: None,
            piggyback: 0,
            consumed: false,
        });
        let info = RecvInfo { rank: r, req, post: t };
        // Earliest pending send wins (post time, then source rank).
        if let Some((channel, send)) =
            self.matcher.take_any_send(r, tag, |s: &SendInfo| (s.post, s.rank))
        {
            let bytes = send.bytes;
            self.resolve_match(channel, send.data, info, bytes);
        } else {
            let created = self.wildcard.push((r, tag), info);
            if created {
                if let Some(p) = self.prof {
                    p.alloc("mpi.wildcard_entry", 1);
                }
            }
        }
        self.observe_queues(r);
        self.prof_queues(r);
        req
    }

    /// A send met its receive: compute the message timing and fill both
    /// requests, waking blocked owners.
    fn resolve_match(&mut self, channel: Channel, send: SendInfo, recv: RecvInfo, bytes: u64) {
        self.n_matches += 1;
        if let Some(p) = self.prof {
            p.enter(EventKind::Pt2ptMatch);
        }
        let seq = self.channels.next_seq(channel);
        // Stable noise key: independent of engine processing order.
        let entity = ((channel.src as u64) << 40)
            | ((channel.dst as u64) << 20)
            | (channel.tag as u64 & 0xfffff);
        let noise = {
            use nrlt_sim::{jitter_factor, StreamKind};
            let mut rng =
                RngFactory::new(self.config.seed).stream(StreamKind::Network, entity, seq);
            if let Some(p) = self.prof {
                p.enter(EventKind::NoiseDraw);
            }
            let f = jitter_factor(&mut rng, self.noise.config().net_sigma);
            if let Some(p) = self.prof {
                p.leave(EventKind::NoiseDraw, 0);
            }
            f
        };
        let link = if self
            .placement
            .same_node(Location::master(channel.src), Location::master(channel.dst))
        {
            LinkKind::SharedMem
        } else {
            LinkKind::Network
        };
        let timing = message_timing(
            &self.config.p2p,
            &self.config.machine.spec,
            link,
            bytes,
            Self::secs_of(send.post),
            Self::secs_of(recv.post),
            noise,
        );
        let send_complete = VirtualTime((timing.send_complete.max(0.0) * 1e9).round() as u64);
        let arrival = VirtualTime((timing.data_arrival.max(0.0) * 1e9).round() as u64);

        if let Some(obs) = self.obs {
            // Replaying the timing with a unit noise factor isolates the
            // jitter this message absorbed; the keyed stream is stateless,
            // so the extra call perturbs nothing.
            let clean = message_timing(
                &self.config.p2p,
                &self.config.machine.spec,
                link,
                bytes,
                Self::secs_of(send.post),
                Self::secs_of(recv.post),
                1.0,
            );
            let clean_arrival = VirtualTime((clean.data_arrival.max(0.0) * 1e9).round() as u64);
            let ids = self.obs_ids.as_ref().expect("observed path without interned names");
            let ph = self.obs_phase(recv.rank);
            let t_ns = send.post.nanos();
            let mag = arrival.nanos() as i64 - clean_arrival.nanos() as i64;
            if mag != 0 {
                let core = self.placement.core_of(Location::master(channel.src)).0 as u64;
                obs.noise_id(NoiseKind::NetJitter, recv.rank, core, seq, ph, t_ns, mag);
            }
            let series = match link {
                LinkKind::SharedMem => ids.wire_sharedmem,
                LinkKind::Network => ids.wire_network,
            };
            let wire = arrival.nanos().saturating_sub(send.post.nanos());
            obs.sample_id(series, ph, t_ns, self.n_events, wire as i64);
        }

        let sreq = &mut self.states[send.rank as usize].pending[send.req];
        sreq.completion = Some(send_complete.max(sreq.completion.unwrap_or(VirtualTime::ZERO)));
        let rreq = &mut self.states[recv.rank as usize].pending[recv.req];
        rreq.completion = Some(arrival);
        rreq.piggyback = send.piggyback;
        // Wildcard receives learn their actual source at match time.
        rreq.peer = channel.src;

        // Wake whoever might be waiting on these.
        self.push_work(send.rank);
        self.push_work(recv.rank);
        if let Some(p) = self.prof {
            // Virtual cost of the match: post-to-arrival latency.
            p.leave(EventKind::Pt2ptMatch, arrival.nanos().saturating_sub(send.post.nanos()));
        }
    }

    /// Join a collective without blocking: the request completes in a
    /// later `Waitall` (MPI_Iallreduce / MPI_Ibarrier).
    fn post_nonblocking_collective(
        &mut self,
        r: u32,
        op: CollectiveOp,
        bytes: u64,
        region: RegionId,
    ) {
        let m = Location::master(r);
        let req = self.states[r as usize].pending.len();
        self.prof_pending_alloc(r);
        self.states[r as usize].pending.push(Request {
            kind: ReqKind::Collective(usize::MAX), // fixed below
            peer: ANY_SOURCE,
            tag: 0,
            bytes,
            completion: None,
            piggyback: 0,
            consumed: false,
        });
        let index = self.register_collective(r, op, bytes, nrlt_trace::NO_ROOT);
        self.states[r as usize].pending[req].kind = ReqKind::Collective(index);
        self.collectives[index].nb_reqs[r as usize] = Some(req);
        // If resolution already happened (we were last to arrive), fill in.
        if let Some((_, completions, max_piggy)) = &self.collectives[index].resolution {
            let completion = completions[r as usize];
            let piggy = *max_piggy;
            let q = &mut self.states[r as usize].pending[req];
            q.completion = Some(completion);
            q.piggyback = piggy;
        }
        let t = self.states[r as usize].time;
        let t = self.emit(m, t, EventInfo::Leave { region });
        self.states[r as usize].time = t;
        self.states[r as usize].cursor += 1;
    }

    fn register_collective(&mut self, r: u32, op: CollectiveOp, bytes: u64, root: u32) -> usize {
        let n_ranks = self.states.len();
        let index = self.states[r as usize].coll_seq;
        self.states[r as usize].coll_seq += 1;
        if self.collectives.len() <= index {
            if let Some(p) = self.prof {
                if self.collectives.len() == self.collectives.capacity() {
                    p.alloc("engine.collectives", 1);
                }
            }
            self.collectives.push(CollInstance {
                op,
                bytes,
                root,
                arrivals: vec![None; n_ranks],
                arrived: 0,
                nb_reqs: vec![None; n_ranks],
                resolution: None,
            });
        }
        let inst = &mut self.collectives[index];
        assert_eq!(
            inst.op, op,
            "collective order mismatch: rank {r} joined {op:?} where {:?} was expected",
            inst.op
        );
        let m = Location::master(r);
        let piggy = self.observer.piggyback(m);
        let arrival = self.states[r as usize].time;
        assert!(inst.arrivals[r as usize].is_none(), "rank {r} joined collective {index} twice");
        inst.arrivals[r as usize] = Some((arrival, piggy));
        inst.arrived += 1;
        if inst.arrived as usize == n_ranks {
            self.resolve_collective(index);
        }
        index
    }

    fn resolve_collective(&mut self, index: usize) {
        self.n_collectives += 1;
        if let Some(p) = self.prof {
            p.enter(EventKind::Collective);
        }
        let spec = &self.config.machine.spec;
        let scope =
            if self.config.machine.nodes > 1 { CommScope::InterNode } else { CommScope::IntraNode };
        let inst = &self.collectives[index];
        let arrivals: Vec<f64> =
            inst.arrivals.iter().map(|a| Self::secs_of(a.expect("unresolved arrival").0)).collect();
        let max_piggy = inst.arrivals.iter().map(|a| a.unwrap().1).max().unwrap_or(0);
        let noise = {
            use nrlt_sim::{jitter_factor, StreamKind};
            let mut rng = RngFactory::new(self.config.seed).stream(
                StreamKind::Network,
                u64::MAX,
                index as u64,
            );
            if let Some(p) = self.prof {
                p.enter(EventKind::NoiseDraw);
            }
            let f = jitter_factor(&mut rng, self.noise.config().net_sigma);
            if let Some(p) = self.prof {
                p.leave(EventKind::NoiseDraw, 0);
            }
            f
        };
        let completions_s = self
            .config
            .collective
            .completion_times(inst.op, spec, scope, inst.bytes, &arrivals, noise);
        let completions: Vec<VirtualTime> =
            completions_s.iter().map(|&s| VirtualTime((s.max(0.0) * 1e9).round() as u64)).collect();
        let last_arrival =
            inst.arrivals.iter().map(|a| a.unwrap().0).max().unwrap_or(VirtualTime::ZERO);
        if let Some(obs) = self.obs {
            // Unit-noise replay of the collective isolates its jitter.
            let clean = self
                .config
                .collective
                .completion_times(inst.op, spec, scope, inst.bytes, &arrivals, 1.0);
            let ids = self.obs_ids.as_ref().expect("observed path without interned names");
            let seq = self.n_events;
            let t_ns = last_arrival.nanos();
            for rank in 0..completions.len() {
                let ph = self.obs_phase(rank as u32);
                let mag = ((completions_s[rank] - clean[rank]) * 1e9).round() as i64;
                if mag != 0 {
                    let core = self.placement.core_of(Location::master(rank as u32)).0 as u64;
                    obs.noise_id(
                        NoiseKind::NetJitter,
                        rank as u32,
                        core,
                        index as u64,
                        ph,
                        t_ns,
                        mag,
                    );
                }
                let alg = completions[rank].nanos().saturating_sub(t_ns);
                obs.sample_id(ids.coll_alg, ph, t_ns, seq, alg as i64);
            }
        }
        let nb: Vec<(usize, usize, VirtualTime)> = self.collectives[index]
            .nb_reqs
            .iter()
            .enumerate()
            .filter_map(|(rank, req)| req.map(|q| (rank, q, completions[rank])))
            .collect();
        if let Some(p) = self.prof {
            // Virtual cost: last arrival to the latest completion.
            let end = completions.iter().copied().max().unwrap_or(VirtualTime::ZERO);
            p.leave(EventKind::Collective, end.saturating_since(last_arrival).nanos());
        }
        self.collectives[index].resolution = Some((last_arrival, completions, max_piggy));
        for (rank, req, completion) in nb {
            let q = &mut self.states[rank].pending[req];
            q.completion = Some(completion);
            q.piggyback = max_piggy;
        }
        for r in 0..self.states.len() as u32 {
            self.push_work(r);
        }
    }

    /// Try to complete rank `r`'s blocked operation. Returns true if the
    /// rank unblocked (and its cursor advanced past the MPI action).
    fn try_unblock(&mut self, r: u32) -> bool {
        let m = Location::master(r);
        let blocked = match self.states[r as usize].blocked {
            Some(b) => b,
            None => return true,
        };
        match blocked {
            Blocked::Wait { since, kind } => {
                let needed: Vec<usize> = match kind {
                    WaitKind::BlockingRecv { req } | WaitKind::BlockingSend { req } => vec![req],
                    WaitKind::Waitall => self.states[r as usize]
                        .pending
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| !q.consumed)
                        .map(|(i, _)| i)
                        .collect(),
                };
                if needed.iter().any(|&i| self.states[r as usize].pending[i].completion.is_none()) {
                    return false;
                }
                let latest = needed
                    .iter()
                    .map(|&i| self.states[r as usize].pending[i].completion.unwrap())
                    .max()
                    .unwrap_or(since);
                let resume = since.max(latest);
                let waited = resume.saturating_since(since);
                if waited > VirtualDuration::ZERO {
                    self.n_spin_conversions += 1;
                    self.observer.on_spin(m, waited);
                }
                let mut t = resume;
                let region = match &self.program.ranks[r as usize][self.states[r as usize].cursor] {
                    Action::Mpi(op) => self.mpi_region(op),
                    other => panic!("blocked cursor not on an MPI action: {other:?}"),
                };
                // Complete receives in posting order; sends just consume.
                let ro = Self::sec(self.config.p2p.recv_overhead);
                for &i in &needed {
                    let (kind, peer, tag, bytes, piggy) = {
                        let q = &self.states[r as usize].pending[i];
                        (q.kind, q.peer, q.tag, q.bytes, q.piggyback)
                    };
                    match kind {
                        ReqKind::Send => {}
                        ReqKind::Recv => {
                            self.observer.on_runtime(m, RuntimeKind::Mpi, ro);
                            t += ro;
                            self.observer.sync_logical(m, piggy);
                            t = self.emit(m, t, EventInfo::RecvComplete { peer, tag, bytes });
                        }
                        ReqKind::Collective(index) => {
                            let (op, root) =
                                (self.collectives[index].op, self.collectives[index].root);
                            self.observer.on_runtime(m, RuntimeKind::Mpi, ro);
                            t += ro;
                            self.observer.sync_logical(m, piggy);
                            t = self.emit(m, t, EventInfo::CollectiveEnd { op, bytes, root });
                        }
                    }
                    self.states[r as usize].pending[i].consumed = true;
                }
                t = self.emit(m, t, EventInfo::Leave { region });
                // Requests stay in place (marked consumed): a later match
                // may still need to fill the send side's completion slot.
                self.states[r as usize].time = t;
                self.states[r as usize].blocked = None;
                self.states[r as usize].cursor += 1;
                true
            }
            Blocked::Collective { since, index } => {
                let (last_arrival, completion, max_piggy, op, bytes, root) = {
                    let inst = &self.collectives[index];
                    match &inst.resolution {
                        None => return false,
                        Some((last, completions, piggy)) => {
                            (*last, completions[r as usize], *piggy, inst.op, inst.bytes, inst.root)
                        }
                    }
                };
                // Decompose the block: spinning until the last participant
                // arrives, then executing the collective algorithm.
                let wait = last_arrival.saturating_since(since);
                if wait > VirtualDuration::ZERO {
                    self.n_spin_conversions += 1;
                    self.observer.on_spin(m, wait);
                }
                let alg = completion.saturating_since(since.max(last_arrival));
                if alg > VirtualDuration::ZERO {
                    self.observer.on_runtime(m, RuntimeKind::Mpi, alg);
                }
                self.observer.sync_logical(m, max_piggy);
                let mut t = since.max(completion);
                t = self.emit(m, t, EventInfo::CollectiveEnd { op, bytes, root });
                let region = match &self.program.ranks[r as usize][self.states[r as usize].cursor] {
                    Action::Mpi(op) => self.mpi_region(op),
                    other => panic!("blocked cursor not on an MPI action: {other:?}"),
                };
                t = self.emit(m, t, EventInfo::Leave { region });
                self.states[r as usize].time = t;
                self.states[r as usize].blocked = None;
                self.states[r as usize].cursor += 1;
                true
            }
        }
    }

    // ---- OpenMP --------------------------------------------------------

    fn do_parallel(&mut self, r: u32, pr: &ParallelRegion) {
        let team = self.config.layout.threads_per_rank;
        let derived = parallel_regions(self.regions, pr.region);
        let m = Location::master(r);
        let loc = |i: u32| Location { rank: r, thread: i };
        let mut t = self.states[r as usize].time;

        // Fork management on the master.
        t = self.emit(m, t, EventInfo::Enter { region: derived.fork });
        let fork = Self::sec(self.config.omp.fork_cost(team));
        self.observer.on_runtime(m, RuntimeKind::Omp, fork);
        t += fork;
        t = self.emit(m, t, EventInfo::Leave { region: derived.fork });
        if let (Some(obs), Some(ids)) = (self.obs, self.obs_ids.as_ref()) {
            obs.sample_id(
                ids.team_threads,
                self.obs_phase(r),
                t.nanos(),
                self.n_events,
                team as i64,
            );
        }

        // Team starts: workers wake staggered; their logical clocks sync
        // with the master's (fork is master -> worker communication).
        let master_piggy = self.observer.piggyback(m);
        let mut tt = std::mem::take(&mut self.scratch.tt);
        tt.clear();
        tt.extend(
            (0..team).map(|i| self.clamp(loc(i), t + Self::sec(self.config.omp.wake_delay(i)))),
        );
        for i in 1..team {
            self.observer.sync_logical(loc(i), master_piggy);
        }
        for i in 0..team {
            tt[i as usize] =
                self.emit(loc(i), tt[i as usize], EventInfo::Enter { region: pr.region });
        }

        for action in &pr.body {
            match action {
                OmpAction::For(f) => self.do_omp_for(r, f, &mut tt),
                OmpAction::Barrier(region) => self.do_omp_barrier(r, *region, &mut tt),
                OmpAction::Single { region, kernel, nowait } => {
                    // First-arriving thread executes (deterministic tie
                    // break by id).
                    let exec = (0..team).min_by_key(|&i| (tt[i as usize], i)).unwrap();
                    let l = loc(exec);
                    let mut te = tt[exec as usize];
                    te = self.emit(l, te, EventInfo::Enter { region: *region });
                    te = self.run_kernel(l, kernel, ExecPhase::TeamParallel, te);
                    te = self.emit(l, te, EventInfo::Leave { region: *region });
                    tt[exec as usize] = te;
                    if !nowait {
                        let ib = implicit_barrier_of(self.regions, *region);
                        self.do_omp_barrier(r, ib, &mut tt);
                    }
                }
                OmpAction::Master { region, kernel } => {
                    let mut te = tt[0];
                    te = self.emit(m, te, EventInfo::Enter { region: *region });
                    te = self.run_kernel(m, kernel, ExecPhase::TeamParallel, te);
                    te = self.emit(m, te, EventInfo::Leave { region: *region });
                    tt[0] = te;
                }
                OmpAction::Critical { region, cost } => {
                    let mut order = std::mem::take(&mut self.scratch.order);
                    order.clear();
                    order.extend(0..team);
                    order.sort_by_key(|&i| (tt[i as usize], i));
                    let mut lock_free = VirtualTime::ZERO;
                    for &i in &order {
                        let l = loc(i);
                        let mut te = tt[i as usize];
                        te = self.emit(l, te, EventInfo::Enter { region: *region });
                        if lock_free > te {
                            self.n_spin_conversions += 1;
                            self.observer.on_spin(l, lock_free - te);
                            te = lock_free;
                        }
                        let inst = self.next_instance(l);
                        let extra = self.observer.counting_instructions(cost, 0);
                        let mut instrumented = *cost;
                        instrumented.instructions += extra;
                        if let Some(p) = self.prof {
                            p.enter(EventKind::KernelAdvance);
                        }
                        let dur = if self.obs.is_some() {
                            self.kernel_duration_observed(
                                l,
                                &instrumented,
                                0,
                                ExecPhase::TeamParallel,
                                inst,
                                te,
                            )
                        } else {
                            self.kernel_duration(l, &instrumented, 0, ExecPhase::TeamParallel, inst)
                        };
                        if let Some(p) = self.prof {
                            p.leave(EventKind::KernelAdvance, dur.nanos());
                        }
                        let wo = self.observer.on_work(
                            l,
                            &WorkItem {
                                cost: *cost,
                                loop_iters: 0,
                                duration: dur,
                                extra_instructions: extra,
                            },
                        );
                        let lockc = Self::sec(self.config.omp.critical_lock);
                        self.observer.on_runtime(l, RuntimeKind::Omp, lockc);
                        te = te + dur + wo + lockc;
                        te = self.emit(l, te, EventInfo::Leave { region: *region });
                        tt[i as usize] = te;
                        lock_free = te;
                    }
                    self.scratch.order = order;
                }
                OmpAction::Replicated(kernel) => {
                    for i in 0..team {
                        tt[i as usize] = self.run_kernel(
                            loc(i),
                            kernel,
                            ExecPhase::TeamParallel,
                            tt[i as usize],
                        );
                    }
                }
            }
        }

        // Implicit barrier at region end, then everyone leaves the region.
        self.do_omp_barrier(r, derived.end_barrier, &mut tt);
        for i in 0..team {
            tt[i as usize] =
                self.emit(loc(i), tt[i as usize], EventInfo::Leave { region: pr.region });
        }

        // Join management on the master.
        let mut t = tt[0];
        t = self.emit(m, t, EventInfo::Enter { region: derived.join });
        let join = Self::sec(self.config.omp.join_cost());
        self.observer.on_runtime(m, RuntimeKind::Omp, join);
        t += join;
        t = self.emit(m, t, EventInfo::Leave { region: derived.join });
        self.states[r as usize].time = t;
        self.scratch.tt = tt;
    }

    fn do_omp_for(&mut self, r: u32, f: &OmpFor, tt: &mut [VirtualTime]) {
        let team = tt.len() as u32;
        let loc = |i: u32| Location { rank: r, thread: i };
        let dynamic = matches!(f.schedule, Schedule::Dynamic(_) | Schedule::Guided);

        // Loop entry: dispatch overhead + loop region enter.
        for i in 0..team {
            let disp = Self::sec(self.config.omp.loop_dispatch_cost(false, 1));
            self.observer.on_runtime(loc(i), RuntimeKind::Omp, disp);
            tt[i as usize] += disp;
            tt[i as usize] =
                self.emit(loc(i), tt[i as usize], EventInfo::Enter { region: f.region });
        }

        if dynamic {
            // Simulate chunk grabbing; record each chunk's cost/duration.
            // All four worklist buffers come from the engine scratch and
            // go back when the loop is done, so repeated dynamic loops
            // reuse their allocations.
            let mut ready = std::mem::take(&mut self.scratch.ready);
            ready.clear();
            ready.extend(tt.iter().map(|&t| Self::secs_of(t)));
            let mut chunk_log = std::mem::take(&mut self.scratch.chunk_log);
            for log in &mut chunk_log {
                log.clear();
            }
            chunk_log.resize_with(team as usize, Vec::new);
            let dispatch = self.config.omp.dispatch_dynamic;
            // Pre-assign instance numbers deterministically per thread.
            let mut inst_base = std::mem::take(&mut self.scratch.inst_base);
            inst_base.clear();
            for i in 0..team {
                inst_base.push(self.next_instance(loc(i)));
            }
            let placement = &self.placement;
            let noise = &self.noise;
            let footprint = self.footprint;
            let desync = self.desync;
            let observer_ref: &O = self.observer;
            let counting =
                |c: &nrlt_prog::Cost, iters: u64| observer_ref.counting_instructions(c, iters);
            let mut counters = std::mem::take(&mut self.scratch.counters);
            counters.clear();
            counters.resize(team as usize, 0);
            let obs = self.obs;
            let prof = self.prof;
            // Owned copies for the chunk closure, so recording does not
            // extend any borrow of the engine (all `None`-cost when off).
            let obs_phase: String = if obs.is_some() || prof.is_some() {
                self.phase_name(r).to_owned()
            } else {
                String::new()
            };
            let obs_ctx: Option<(&ObsIds, ObsPhase)> =
                self.obs_ids.as_ref().map(|ids| (ids, self.obs_phase(r)));
            let obs_seq = self.n_events;
            let obs_t0: Vec<u64> =
                if obs.is_some() { tt.iter().map(|t| t.nanos()).collect() } else { Vec::new() };
            let result = simulate_dynamic_prof(
                f.iters,
                f.schedule,
                &ready,
                |thread, b, e| {
                    let cost = f.iter_cost.range_cost(b, e, f.iters);
                    let extra = counting(&cost, e - b);
                    let mut instrumented = cost;
                    instrumented.instructions += extra;
                    let mut model = DurationModel::new(placement, noise);
                    model.footprint_per_location = footprint;
                    model.desync = desync;
                    let inst =
                        inst_base[thread as usize].wrapping_add(counters[thread as usize] << 24);
                    counters[thread as usize] += 1;
                    let d = if let (Some(o), Some((ids, ph))) = (obs, obs_ctx) {
                        let mut probe = KernelProbe::default();
                        let d = model.kernel_duration_instrumented(
                            loc(thread),
                            &instrumented,
                            f.working_set,
                            ExecPhase::TeamParallel,
                            inst,
                            Some(&mut probe),
                            prof,
                        );
                        record_kernel_obs(
                            o,
                            ids,
                            &probe,
                            cost.mem_bytes,
                            r,
                            placement.core_of(loc(thread)).0 as u64,
                            inst,
                            ph,
                            obs_t0[thread as usize],
                            obs_seq,
                        );
                        d
                    } else {
                        model.kernel_duration_instrumented(
                            loc(thread),
                            &instrumented,
                            f.working_set,
                            ExecPhase::TeamParallel,
                            inst,
                            None,
                            prof,
                        )
                    };
                    chunk_log[thread as usize].push((cost, d, extra));
                    d.as_secs_f64()
                },
                dispatch,
                prof,
                &obs_phase,
            );
            if let (Some(o), Some((ids, ph))) = (obs, obs_ctx) {
                // Loop-level occupancy: how many chunks the schedule cut
                // and how far apart the threads finished.
                let chunks = result.partition.total_chunks();
                let t_ns = obs_t0.iter().copied().min().unwrap_or(0);
                o.sample_id(ids.loop_chunks, ph, t_ns, obs_seq, chunks as i64);
                let lo = result.finish.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = result.finish.iter().cloned().fold(0.0f64, f64::max);
                let spread = if hi > lo { ((hi - lo) * 1e9).round() as i64 } else { 0 };
                o.sample_id(ids.ready_spread, ph, t_ns, obs_seq, spread);
            }
            for i in 0..team as usize {
                let mut total_ovh = VirtualDuration::ZERO;
                let mut iters = 0u64;
                for (range, (cost, dur, extra)) in
                    result.partition.chunks[i].iter().zip(chunk_log[i].iter())
                {
                    iters += range.len();
                    total_ovh += self.observer.on_work(
                        loc(i as u32),
                        &WorkItem {
                            cost: *cost,
                            loop_iters: range.len(),
                            duration: *dur,
                            extra_instructions: *extra,
                        },
                    );
                }
                let _ = iters;
                let chunks = result.partition.chunks[i].len();
                self.observer.on_runtime(
                    loc(i as u32),
                    RuntimeKind::Omp,
                    Self::sec(dispatch * chunks as f64),
                );
                tt[i] = VirtualTime((result.finish[i].max(0.0) * 1e9).round() as u64) + total_ovh;
            }
            self.scratch.ready = ready;
            self.scratch.chunk_log = chunk_log;
            self.scratch.inst_base = inst_base;
            self.scratch.counters = counters;
        } else {
            let partition = static_partition(f.iters, team, f.schedule);
            for i in 0..team {
                let mut cost = nrlt_prog::Cost::ZERO;
                let mut iters = 0u64;
                for range in &partition.chunks[i as usize] {
                    cost += f.iter_cost.range_cost(range.begin, range.end, f.iters);
                    iters += range.len();
                }
                let inst = self.next_instance(loc(i));
                let extra = self.observer.counting_instructions(&cost, iters);
                let mut instrumented = cost;
                instrumented.instructions += extra;
                if let Some(p) = self.prof {
                    p.enter(EventKind::LoopChunk);
                }
                let dur = if self.obs.is_some() {
                    self.kernel_duration_observed(
                        loc(i),
                        &instrumented,
                        f.working_set,
                        ExecPhase::TeamParallel,
                        inst,
                        tt[i as usize],
                    )
                } else {
                    self.kernel_duration(
                        loc(i),
                        &instrumented,
                        f.working_set,
                        ExecPhase::TeamParallel,
                        inst,
                    )
                };
                if let Some(p) = self.prof {
                    p.leave(EventKind::LoopChunk, dur.nanos());
                }
                let wo = self.observer.on_work(
                    loc(i),
                    &WorkItem { cost, loop_iters: iters, duration: dur, extra_instructions: extra },
                );
                tt[i as usize] = tt[i as usize] + dur + wo;
            }
            if let (Some(obs), Some(ids)) = (self.obs, self.obs_ids.as_ref()) {
                let t_ns = tt.iter().map(|t| t.nanos()).min().unwrap_or(0);
                obs.sample_id(
                    ids.loop_chunks,
                    self.obs_phase(r),
                    t_ns,
                    self.n_events,
                    partition.total_chunks() as i64,
                );
            }
        }

        for i in 0..team {
            tt[i as usize] =
                self.emit(loc(i), tt[i as usize], EventInfo::Leave { region: f.region });
        }
        if !f.nowait {
            let ib = implicit_barrier_of(self.regions, f.region);
            self.do_omp_barrier(r, ib, tt);
        }
    }

    fn do_omp_barrier(&mut self, r: u32, region: RegionId, tt: &mut [VirtualTime]) {
        let team = tt.len() as u32;
        let loc = |i: u32| Location { rank: r, thread: i };
        for i in 0..team {
            tt[i as usize] = self.emit(loc(i), tt[i as usize], EventInfo::Enter { region });
        }
        let prof_arr: Vec<u64> = if let Some(p) = self.prof {
            p.enter(EventKind::Barrier);
            tt.iter().map(|t| t.nanos()).collect()
        } else {
            Vec::new()
        };
        let max_arr = tt.iter().copied().max().unwrap_or(VirtualTime::ZERO);
        let release = max_arr + Self::sec(self.config.omp.barrier_cost(team));
        let max_piggy = (0..team).map(|i| self.observer.piggyback(loc(i))).max().unwrap_or(0);
        for i in 0..team {
            let wait = max_arr.saturating_since(tt[i as usize]);
            if wait > VirtualDuration::ZERO {
                self.n_spin_conversions += 1;
                self.observer.on_spin(loc(i), wait);
            }
            self.observer.on_runtime(loc(i), RuntimeKind::Omp, release.saturating_since(max_arr));
            self.observer.sync_logical(loc(i), max_piggy);
            let exit = release + Self::sec(self.config.omp.wake_stagger) * i as u64;
            tt[i as usize] = self.emit(loc(i), exit, EventInfo::Leave { region });
        }
        if let Some(p) = self.prof {
            // Virtual cost: total thread-time spent inside the barrier.
            let held: u64 =
                tt.iter().zip(&prof_arr).map(|(t, &a)| t.nanos().saturating_sub(a)).sum();
            p.leave(EventKind::Barrier, held);
        }
    }
}

/// Record what one probed kernel-duration call saw: contention samples
/// (only for kernels that touch memory) and the noise draws that
/// perturbed it. Free function so the dynamic-loop closure can call it
/// without borrowing the engine.
#[allow(clippy::too_many_arguments)]
fn record_kernel_obs(
    obs: &RunObserve,
    ids: &ObsIds,
    probe: &KernelProbe,
    mem_bytes: u64,
    rank: u32,
    core: u64,
    instance: u64,
    phase: ObsPhase,
    t_ns: u64,
    seq: u64,
) {
    if mem_bytes > 0 {
        obs.sample_id(
            ids.numa_bw[probe.numa as usize],
            phase,
            t_ns,
            seq,
            probe.active_in_domain as i64,
        );
        obs.sample_id(
            ids.socket_l3[probe.socket as usize],
            phase,
            t_ns,
            seq,
            probe.dram_permille as i64,
        );
    }
    if probe.cpu_noise_ns != 0 {
        obs.noise_id(NoiseKind::CpuJitter, rank, core, instance, phase, t_ns, probe.cpu_noise_ns);
    }
    if probe.mem_noise_ns != 0 {
        obs.noise_id(NoiseKind::MemJitter, rank, core, instance, phase, t_ns, probe.mem_noise_ns);
    }
    if probe.detour_ns > 0 {
        obs.noise_id(
            NoiseKind::OsDetour,
            rank,
            core,
            instance,
            phase,
            t_ns,
            probe.detour_ns as i64,
        );
    }
}
