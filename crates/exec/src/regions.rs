//! Region preparation: extend the program's region table with the
//! runtime regions the engine will enter (MPI API calls, OpenMP fork/join
//! and implicit barriers).
//!
//! Interning happens in a single deterministic scan, so the table — and
//! therefore every region id in the resulting trace — is identical across
//! repetitions and clock modes.

use nrlt_prog::{Action, MpiOp, OmpAction, Program, RegionId, RegionKind, RegionTable};

/// Derived region ids for one parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRegions {
    /// `!$omp fork @name` management region (master only).
    pub fork: RegionId,
    /// `!$omp join @name` management region (master only).
    pub join: RegionId,
    /// Implicit barrier at the end of the parallel region.
    pub end_barrier: RegionId,
}

/// Strip the Opari2-style prefix from a construct region name, returning
/// the user-facing construct name.
fn construct_name(full: &str) -> &str {
    full.split_once('@').map(|(_, n)| n).unwrap_or(full)
}

/// Intern all runtime regions referenced by `program` into a copy of its
/// region table.
pub fn prepare_regions(program: &Program) -> RegionTable {
    let mut table = program.regions.clone();
    for actions in &program.ranks {
        for action in actions {
            match action {
                Action::Mpi(op) => {
                    table.intern(op.api_name(), RegionKind::Mpi);
                }
                Action::Parallel(pr) => {
                    let name = construct_name(table.name(pr.region)).to_owned();
                    table.intern(&format!("!$omp fork @{name}"), RegionKind::OmpFork);
                    table.intern(&format!("!$omp join @{name}"), RegionKind::OmpFork);
                    table.intern(
                        &format!("!$omp implicit barrier @{name}"),
                        RegionKind::OmpImplicitBarrier,
                    );
                    for body in &pr.body {
                        match body {
                            OmpAction::For(f) if !f.nowait => {
                                let ln = construct_name(table.name(f.region)).to_owned();
                                table.intern(
                                    &format!("!$omp implicit barrier @{ln}"),
                                    RegionKind::OmpImplicitBarrier,
                                );
                            }
                            OmpAction::Single { region, nowait: false, .. } => {
                                let sn = construct_name(table.name(*region)).to_owned();
                                table.intern(
                                    &format!("!$omp implicit barrier @{sn}"),
                                    RegionKind::OmpImplicitBarrier,
                                );
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }
    table
}

/// Look up the derived regions of a parallel region (after
/// [`prepare_regions`]).
pub fn parallel_regions(table: &RegionTable, parallel_region: RegionId) -> ParallelRegions {
    let name = construct_name(table.name(parallel_region)).to_owned();
    let find = |prefix: &str| {
        table
            .find(&format!("{prefix} @{name}"))
            .unwrap_or_else(|| panic!("missing derived region `{prefix} @{name}`"))
    };
    ParallelRegions {
        fork: find("!$omp fork"),
        join: find("!$omp join"),
        end_barrier: find("!$omp implicit barrier"),
    }
}

/// Look up the implicit-barrier region of a worksharing construct.
pub fn implicit_barrier_of(table: &RegionTable, construct: RegionId) -> RegionId {
    let name = construct_name(table.name(construct)).to_owned();
    table
        .find(&format!("!$omp implicit barrier @{name}"))
        .unwrap_or_else(|| panic!("missing implicit barrier for @{name}"))
}

/// Map a program MPI op to the trace collective kind.
pub fn collective_kind(op: &MpiOp) -> Option<nrlt_trace::CollectiveOp> {
    use nrlt_trace::CollectiveOp as C;
    Some(match op {
        MpiOp::Barrier => C::Barrier,
        MpiOp::Allreduce { .. } => C::Allreduce,
        MpiOp::Alltoall { .. } => C::Alltoall,
        MpiOp::Allgather { .. } => C::Allgather,
        MpiOp::Bcast { .. } => C::Bcast,
        MpiOp::Reduce { .. } => C::Reduce,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_prog::{Cost, IterCost, ProgramBuilder, Schedule};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new(2);
        for r in 0..2 {
            let mut rb = pb.rank(r);
            rb.scoped("main", |rb| {
                rb.parallel("work", |omp| {
                    omp.for_loop(
                        "loop",
                        100,
                        Schedule::Static,
                        IterCost::Uniform(Cost::scalar(10)),
                        0,
                    );
                    omp.single("setup", Cost::scalar(5), 0);
                });
                rb.allreduce(8);
                if r == 0 {
                    rb.send(1, 0, 64);
                } else {
                    rb.recv(0, 0, 64);
                }
            });
        }
        pb.finish()
    }

    #[test]
    fn interns_mpi_regions() {
        let p = sample();
        let t = prepare_regions(&p);
        assert!(t.find("MPI_Allreduce").is_some());
        assert!(t.find("MPI_Send").is_some());
        assert!(t.find("MPI_Recv").is_some());
        assert!(t.find("MPI_Alltoall").is_none());
    }

    #[test]
    fn interns_parallel_derived_regions() {
        let p = sample();
        let t = prepare_regions(&p);
        let pr = t.find("!$omp parallel @work").unwrap();
        let derived = parallel_regions(&t, pr);
        assert_eq!(t.name(derived.fork), "!$omp fork @work");
        assert_eq!(t.name(derived.join), "!$omp join @work");
        assert_eq!(t.kind(derived.fork), RegionKind::OmpFork);
        assert_eq!(t.kind(derived.end_barrier), RegionKind::OmpImplicitBarrier);
    }

    #[test]
    fn interns_loop_and_single_barriers() {
        let p = sample();
        let t = prepare_regions(&p);
        let lp = t.find("!$omp for @loop").unwrap();
        let ib = implicit_barrier_of(&t, lp);
        assert_eq!(t.name(ib), "!$omp implicit barrier @loop");
        let sg = t.find("!$omp single @setup").unwrap();
        assert_eq!(t.name(implicit_barrier_of(&t, sg)), "!$omp implicit barrier @setup");
    }

    #[test]
    fn preparation_is_deterministic() {
        let p = sample();
        let a = prepare_regions(&p);
        let b = prepare_regions(&p);
        let names_a: Vec<_> = a.iter().map(|(_, r)| r.name.clone()).collect();
        let names_b: Vec<_> = b.iter().map(|(_, r)| r.name.clone()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn collective_kinds() {
        assert_eq!(collective_kind(&MpiOp::Barrier), Some(nrlt_trace::CollectiveOp::Barrier));
        assert_eq!(
            collective_kind(&MpiOp::Allreduce { bytes: 8 }),
            Some(nrlt_trace::CollectiveOp::Allreduce)
        );
    }
}
