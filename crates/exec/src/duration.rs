//! Kernel duration model: roofline over the placed topology.
//!
//! A kernel's physical duration is the maximum of its CPU term
//! (instructions at the core's sustained IPC) and its memory term (bytes
//! at the effective bandwidth of the thread's NUMA domain and socket L3),
//! plus whatever the OS steals in detours. Contention and cache fit come
//! from the *static* placement: in the paper's SPMD benchmarks all
//! threads of a domain execute the same phase concurrently, so occupancy
//! is an accurate stand-in for instantaneous activity.

use nrlt_engineprof::RunProf;
use nrlt_prog::Cost;
use nrlt_sim::{
    cache_bandwidth_share, dram_fraction, memory_time, shared_bandwidth, Location, NoiseModel,
    Placement, VirtualDuration,
};

/// Memory-time multiplier for ranks whose thread team spans sockets
/// (remote/interleaved accesses, cf. the paper's TeaLeaf-1 configuration
/// "distributes threads across sockets").
pub const REMOTE_ACCESS_PENALTY: f64 = 1.45;

/// Synchronised kernel duration below which measurement-induced
/// desynchronisation has no effect: loop barriers re-synchronise the
/// team before any drift accumulates.
pub const DESYNC_ONSET_SECS: f64 = 0.1;

/// Additional duration over which the desynchronisation ramps to full
/// effect once past the onset.
pub const DESYNC_RAMP_SECS: f64 = 0.15;

/// Execution context of a kernel, deciding who it contends with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPhase {
    /// Inside a parallel region: every placed thread is active.
    TeamParallel,
    /// Serial section: only rank master threads are active.
    Serial,
}

/// What the duration model saw while pricing one kernel — filled only by
/// [`DurationModel::kernel_duration_probed`], so the unprobed path does
/// no extra work. Contention fields are zero for pure-CPU kernels, which
/// never touch the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelProbe {
    /// NUMA domain of the executing location.
    pub numa: u32,
    /// Socket of the executing location.
    pub socket: u32,
    /// Threads contending for the domain's memory bandwidth.
    pub active_in_domain: u32,
    /// Threads sharing the socket L3.
    pub active_on_socket: u32,
    /// DRAM-resident fraction of the kernel's traffic, permille.
    pub dram_permille: u32,
    /// CPU-jitter time injected, signed nanoseconds.
    pub cpu_noise_ns: i64,
    /// Memory-jitter (bias × jitter) time injected, signed nanoseconds.
    pub mem_noise_ns: i64,
    /// OS-detour time injected, nanoseconds.
    pub detour_ns: u64,
}

/// Computes kernel durations for one run configuration.
#[derive(Debug)]
pub struct DurationModel<'a> {
    placement: &'a Placement,
    noise: &'a NoiseModel,
    /// Measurement cache footprint per location, bytes.
    pub footprint_per_location: u64,
    /// Measurement-induced desynchronisation in `[0, 1]`.
    pub desync: f64,
}

impl<'a> DurationModel<'a> {
    /// Bind a model to a placement and a noise repetition.
    pub fn new(placement: &'a Placement, noise: &'a NoiseModel) -> Self {
        DurationModel { placement, noise, footprint_per_location: 0, desync: 0.0 }
    }

    /// Duration of `cost` on `loc` during `phase`.
    ///
    /// * `working_set` — bytes of this rank's data the kernel streams.
    /// * `instance` — per-location kernel sequence number (noise stream key).
    pub fn kernel_duration(
        &self,
        loc: Location,
        cost: &Cost,
        working_set: u64,
        phase: ExecPhase,
        instance: u64,
    ) -> VirtualDuration {
        self.duration_inner(loc, cost, working_set, phase, instance, None, None)
    }

    /// [`DurationModel::kernel_duration`] that additionally fills `probe`
    /// with what the model saw (contention, cache fit, noise split). The
    /// duration itself is computed by the exact same expression sequence,
    /// so probing never changes the result.
    pub fn kernel_duration_probed(
        &self,
        loc: Location,
        cost: &Cost,
        working_set: u64,
        phase: ExecPhase,
        instance: u64,
        probe: &mut KernelProbe,
    ) -> VirtualDuration {
        self.duration_inner(loc, cost, working_set, phase, instance, Some(probe), None)
    }

    /// The fully instrumented duration call: optional probe (resource
    /// observatory) plus optional engine profiler (`prof` counts every
    /// noise draw the model makes as a `NoiseDraw` event). Both `None`
    /// paths do zero extra work; the duration itself is identical in
    /// every combination.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel_duration_instrumented(
        &self,
        loc: Location,
        cost: &Cost,
        working_set: u64,
        phase: ExecPhase,
        instance: u64,
        probe: Option<&mut KernelProbe>,
        prof: Option<&RunProf>,
    ) -> VirtualDuration {
        self.duration_inner(loc, cost, working_set, phase, instance, probe, prof)
    }

    #[allow(clippy::too_many_arguments)]
    fn duration_inner(
        &self,
        loc: Location,
        cost: &Cost,
        working_set: u64,
        phase: ExecPhase,
        instance: u64,
        mut probe: Option<&mut KernelProbe>,
        prof: Option<&RunProf>,
    ) -> VirtualDuration {
        let machine = self.placement.machine();
        let spec = &machine.spec;
        let core = self.placement.core_of(loc);
        let numa = self.placement.numa_of(loc);
        let socket = self.placement.socket_of(loc);

        // CPU term. All noise channels of this kernel are pre-drawn in
        // one interleaved ChaCha batch; stream keys and positions match
        // the per-channel draws, so the factors are bit-identical.
        let mut kn = self.noise.kernel_noise(core.0 as u64, instance, cost.mem_bytes != 0, prof);
        let cpu_base = spec.cpu_time(cost.instructions);
        let cpu = cpu_base * kn.cpu_factor;

        // Memory term.
        let mem = if cost.mem_bytes == 0 {
            0.0
        } else {
            let threads_on_socket = self.placement.socket_occupancy(socket).max(1);
            let threads_per_rank = self.placement.layout().threads_per_rank;
            let (active_in_domain, active_on_socket, ranks_on_socket) = match phase {
                ExecPhase::TeamParallel => (
                    self.placement.numa_occupancy(numa).max(1),
                    threads_on_socket,
                    threads_on_socket / threads_per_rank.max(1),
                ),
                ExecPhase::Serial => {
                    // Only masters run; at most one per rank.
                    let ranks_in_domain =
                        (self.placement.numa_occupancy(numa) / threads_per_rank.max(1)).max(1);
                    let ranks_on_socket = (threads_on_socket / threads_per_rank.max(1)).max(1);
                    (ranks_in_domain, ranks_on_socket, ranks_on_socket)
                }
            };
            // Socket-resident application data: every rank on the socket
            // holds a comparable working set (SPMD), and a rank whose
            // team spans sockets splits its data across them.
            let _ = ranks_on_socket;
            let socket_ws = (working_set as f64 * threads_on_socket as f64
                / threads_per_rank.max(1) as f64) as u64;
            let footprint = self.footprint_per_location.saturating_mul(threads_on_socket as u64);
            let dram_frac = dram_fraction(socket_ws, footprint, spec.l3_per_socket);
            // Desynchronisation accumulates over a kernel's lifetime
            // (Afzal et al.): threads drift apart in long uninterrupted
            // memory phases, while frequent barriers (short kernels) keep
            // them in lock-step. Estimate the kernel's synchronised
            // duration first, then ramp the measurement-induced desync
            // with it.
            let synced_bw = shared_bandwidth(spec.numa_bandwidth, active_in_domain, 1.0);
            let synced_time = cost.mem_bytes as f64 * dram_frac / synced_bw;
            let desync_eff = self.desync
                * ((synced_time - DESYNC_ONSET_SECS) / DESYNC_RAMP_SECS).clamp(0.0, 1.0);
            let overlap = (1.0 - desync_eff).clamp(0.0, 1.0);
            let dram_bw = shared_bandwidth(spec.numa_bandwidth, active_in_domain, overlap);
            let cache_bw = cache_bandwidth_share(spec, active_on_socket);
            // A rank whose team spans sockets pays for remote accesses:
            // its shared data is interleaved across both sockets' memory.
            let tpr = threads_per_rank.max(1);
            let first = Location { rank: loc.rank, thread: 0 };
            let last = Location { rank: loc.rank, thread: tpr - 1 };
            let remote = if self.placement.socket_of(first) != self.placement.socket_of(last) {
                REMOTE_ACCESS_PENALTY
            } else {
                1.0
            };
            let mem_clean = memory_time(cost.mem_bytes, dram_frac, dram_bw, cache_bw) * remote;
            let mem = mem_clean * kn.mem_bias * kn.mem_factor;
            if let Some(p) = probe.as_deref_mut() {
                p.active_in_domain = active_in_domain;
                p.active_on_socket = active_on_socket;
                p.dram_permille = (dram_frac * 1000.0).round() as u32;
                p.mem_noise_ns = ((mem - mem_clean) * 1e9).round() as i64;
            }
            mem
        };

        // Roofline: CPU and memory overlap; the slower resource dominates.
        let base = cpu.max(mem);
        let detour = self.noise.detour_time_warmed(&mut kn, base, prof);
        if let Some(p) = probe {
            p.numa = numa.0;
            p.socket = socket.0;
            p.cpu_noise_ns = ((cpu - cpu_base) * 1e9).round() as i64;
            p.detour_ns = (detour.max(0.0) * 1e9).round() as u64;
        }
        VirtualDuration::from_secs_f64(base + detour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_sim::{JobLayout, Machine, NoiseConfig, RngFactory};

    fn setup(ranks: u32, tpr: u32, noise: NoiseConfig) -> (Placement, NoiseModel) {
        let placement = Placement::new(Machine::jureca_dc(1), JobLayout::block(ranks, tpr));
        let model = NoiseModel::new(noise, RngFactory::new(1));
        (placement, model)
    }

    #[test]
    fn cpu_bound_kernel_scales_with_instructions() {
        let (p, n) = setup(1, 1, NoiseConfig::silent());
        let m = DurationModel::new(&p, &n);
        let loc = Location::master(0);
        let d1 = m.kernel_duration(loc, &Cost::scalar(1_000_000), 0, ExecPhase::Serial, 0);
        let d2 = m.kernel_duration(loc, &Cost::scalar(2_000_000), 0, ExecPhase::Serial, 0);
        assert!((d2.nanos() as f64 / d1.nanos() as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn memory_bound_kernel_suffers_contention() {
        let (p, n) = setup(8, 16, NoiseConfig::silent());
        let m = DurationModel::new(&p, &n);
        let cost = Cost::ZERO.with_mem_bytes(1 << 26);
        let big_ws = 1 << 32; // far beyond L3: pure DRAM
        let loc = Location::master(0);
        let serial = m.kernel_duration(loc, &cost, big_ws, ExecPhase::Serial, 0);
        let parallel = m.kernel_duration(loc, &cost, big_ws, ExecPhase::TeamParallel, 0);
        assert!(
            parallel > serial * 3,
            "16 threads per domain must contend: {parallel} vs {serial}"
        );
    }

    #[test]
    fn cache_resident_working_set_is_fast() {
        let (p, n) = setup(2, 64, NoiseConfig::silent());
        let m = DurationModel::new(&p, &n);
        let cost = Cost::ZERO.with_mem_bytes(1 << 24);
        let loc = Location::master(0);
        let fits = m.kernel_duration(loc, &cost, 200 << 20, ExecPhase::TeamParallel, 0);
        let spills = m.kernel_duration(loc, &cost, 2 << 30, ExecPhase::TeamParallel, 0);
        assert!(spills > fits * 2, "cache-resident data must be faster: {fits} vs {spills}");
    }

    #[test]
    fn measurement_footprint_slows_memory_kernels() {
        let (p, n) = setup(2, 64, NoiseConfig::silent());
        let mut m = DurationModel::new(&p, &n);
        let cost = Cost::ZERO.with_mem_bytes(1 << 24);
        let loc = Location::master(0);
        // Working set chosen to just fit in the 256 MB socket L3.
        let ws = 220 << 20;
        let clean = m.kernel_duration(loc, &cost, ws, ExecPhase::TeamParallel, 0);
        m.footprint_per_location = 2 << 20; // 2 MB x 64 threads = 128 MB pollution
        let polluted = m.kernel_duration(loc, &cost, ws, ExecPhase::TeamParallel, 0);
        assert!(
            polluted > clean.scale(1.2),
            "footprint must evict the working set: {clean} vs {polluted}"
        );
    }

    #[test]
    fn desync_relieves_contention_on_long_kernels() {
        let (p, n) = setup(8, 16, NoiseConfig::silent());
        let mut m = DurationModel::new(&p, &n);
        let loc = Location::master(0);
        let ws = 64u64 << 30;
        // Long kernel (past the desync onset): relief applies.
        let long = Cost::ZERO.with_mem_bytes(1 << 30);
        let synced = m.kernel_duration(loc, &long, ws, ExecPhase::TeamParallel, 0);
        m.desync = 1.0;
        let desynced = m.kernel_duration(loc, &long, ws, ExecPhase::TeamParallel, 0);
        assert!(desynced < synced);
        // Short kernel (before the onset): barriers keep threads in
        // lock-step, no relief.
        let short = Cost::ZERO.with_mem_bytes(1 << 24);
        m.desync = 0.0;
        let s1 = m.kernel_duration(loc, &short, ws, ExecPhase::TeamParallel, 0);
        m.desync = 1.0;
        let s2 = m.kernel_duration(loc, &short, ws, ExecPhase::TeamParallel, 0);
        assert_eq!(s1, s2);
    }

    #[test]
    fn noise_perturbs_durations_across_instances() {
        let (p, n) = setup(1, 1, NoiseConfig::realistic());
        let m = DurationModel::new(&p, &n);
        let loc = Location::master(0);
        let cost = Cost::scalar(10_000_000);
        let d0 = m.kernel_duration(loc, &cost, 0, ExecPhase::Serial, 0);
        let mut saw_different = false;
        for i in 1..20 {
            if m.kernel_duration(loc, &cost, 0, ExecPhase::Serial, i) != d0 {
                saw_different = true;
            }
        }
        assert!(saw_different, "noise must vary across kernel instances");
    }

    #[test]
    fn instrumented_path_counts_draws_without_changing_durations() {
        use nrlt_engineprof::EventKind;
        let (p, n) = setup(1, 1, NoiseConfig::realistic());
        let m = DurationModel::new(&p, &n);
        let loc = Location::master(0);
        let cost = Cost::scalar(10_000_000).with_mem_bytes(1 << 20);
        let plain = m.kernel_duration(loc, &cost, 1 << 20, ExecPhase::Serial, 3);
        let run = RunProf::new("r");
        let profiled = m.kernel_duration_instrumented(
            loc,
            &cost,
            1 << 20,
            ExecPhase::Serial,
            3,
            None,
            Some(&run),
        );
        assert_eq!(plain, profiled, "profiling must not change the priced duration");
        let (_, d) = run.finish();
        // cpu jitter + mem jitter + detour = 3 draws; the per-core mem
        // bias was memoised by the unprofiled call above.
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 3);

        // On a model whose bias cache is still cold, the filling bias
        // draw is counted too.
        let n2 = NoiseModel::new(NoiseConfig::realistic(), RngFactory::new(1));
        let m2 = DurationModel::new(&p, &n2);
        let run = RunProf::new("r2");
        let again = m2.kernel_duration_instrumented(
            loc,
            &cost,
            1 << 20,
            ExecPhase::Serial,
            3,
            None,
            Some(&run),
        );
        assert_eq!(again, plain);
        let (_, d) = run.finish();
        assert_eq!(d.kinds[EventKind::NoiseDraw.index()].count, 4);
    }

    #[test]
    fn silent_noise_is_deterministic() {
        let (p, n) = setup(1, 1, NoiseConfig::silent());
        let m = DurationModel::new(&p, &n);
        let loc = Location::master(0);
        let cost = Cost::scalar(10_000_000).with_mem_bytes(1 << 20);
        let d0 = m.kernel_duration(loc, &cost, 1 << 20, ExecPhase::Serial, 0);
        let d1 = m.kernel_duration(loc, &cost, 1 << 20, ExecPhase::Serial, 99);
        assert_eq!(d0, d1);
    }
}
