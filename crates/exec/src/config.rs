//! Run configuration for the replay engine.

use nrlt_mpisim::{CollectiveModel, P2pModel};
use nrlt_ompsim::OmpOverheadModel;
use nrlt_sim::{JobLayout, Machine, NoiseConfig};

/// Everything the engine needs besides the program and the observer.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// The allocated machine.
    pub machine: Machine,
    /// Ranks × threads and pinning.
    pub layout: JobLayout,
    /// Noise intensities (switch off for idealised runs).
    pub noise: NoiseConfig,
    /// Experiment repetition seed; drives every random stream.
    pub seed: u64,
    /// Point-to-point protocol parameters.
    pub p2p: P2pModel,
    /// Collective timing parameters.
    pub collective: CollectiveModel,
    /// OpenMP runtime overheads.
    pub omp: OmpOverheadModel,
}

impl ExecConfig {
    /// A configuration on `nodes` Jureca-DC nodes with default protocol
    /// models and realistic noise.
    pub fn jureca(nodes: u32, layout: JobLayout, seed: u64) -> Self {
        ExecConfig {
            machine: Machine::jureca_dc(nodes),
            layout,
            noise: NoiseConfig::realistic(),
            seed,
            p2p: P2pModel::default(),
            collective: CollectiveModel::default(),
            omp: OmpOverheadModel::default(),
        }
    }

    /// Same configuration with different noise.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Same configuration with a different seed (one repetition).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jureca_constructor_wires_layout() {
        let c = ExecConfig::jureca(2, JobLayout::block(64, 4), 7);
        assert_eq!(c.machine.nodes, 2);
        assert_eq!(c.layout.ranks, 64);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn with_modifiers() {
        let c = ExecConfig::jureca(1, JobLayout::block(2, 1), 0)
            .with_noise(NoiseConfig::silent())
            .with_seed(3);
        assert!(c.noise.is_silent());
        assert_eq!(c.seed, 3);
    }
}
