//! Execution results: application-level timings.
//!
//! The mini-apps report their own phase timings (MiniFE's init/solve
//! split, the total time to completion) through zero-overhead virtual
//! stopwatches. These are the reference numbers overhead percentages are
//! computed against (Table I / Table II of the paper).

use nrlt_prog::PhaseId;
use nrlt_sim::{VirtualDuration, VirtualTime};
use std::collections::BTreeMap;

/// Timings of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Per-rank accumulated stopwatch durations.
    pub phase_times: Vec<BTreeMap<PhaseId, VirtualDuration>>,
    /// Per-rank completion time of the last action.
    pub rank_end: Vec<VirtualTime>,
    /// Job run time: the latest completion over all locations.
    pub total: VirtualDuration,
    /// Engine events dispatched to produce this result — the
    /// denominator-free side of the events/sec throughput KPI (the
    /// numerator of `events_per_sec`; wall time comes from the caller).
    pub events: u64,
}

impl ExecResult {
    /// Maximum accumulated duration of `phase` over all ranks — the
    /// number an application would print for a globally synchronised
    /// phase.
    pub fn phase_max(&self, phase: PhaseId) -> VirtualDuration {
        self.phase_times
            .iter()
            .filter_map(|m| m.get(&phase))
            .copied()
            .max()
            .unwrap_or(VirtualDuration::ZERO)
    }

    /// Mean accumulated duration of `phase` over the ranks that ran it.
    pub fn phase_mean(&self, phase: PhaseId) -> VirtualDuration {
        let values: Vec<VirtualDuration> =
            self.phase_times.iter().filter_map(|m| m.get(&phase)).copied().collect();
        if values.is_empty() {
            return VirtualDuration::ZERO;
        }
        let sum: u64 = values.iter().map(|d| d.nanos()).sum();
        VirtualDuration::from_nanos(sum / values.len() as u64)
    }
}

/// Relative overhead of an instrumented run against a reference, in
/// percent: `100 × (instrumented − reference) / reference`.
///
/// Can be negative — the paper observes instrumentation *speeding up*
/// memory-bound phases through thread desynchronisation (Section V-A).
pub fn overhead_percent(reference: VirtualDuration, instrumented: VirtualDuration) -> f64 {
    if reference.nanos() == 0 {
        return 0.0;
    }
    100.0 * (instrumented.as_secs_f64() - reference.as_secs_f64()) / reference.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_signs() {
        let r = VirtualDuration::from_millis(100);
        assert!((overhead_percent(r, VirtualDuration::from_millis(150)) - 50.0).abs() < 1e-9);
        assert!((overhead_percent(r, VirtualDuration::from_millis(90)) + 10.0).abs() < 1e-9);
        assert_eq!(overhead_percent(VirtualDuration::ZERO, r), 0.0);
    }

    #[test]
    fn phase_aggregates() {
        let p = PhaseId(0);
        let mut a = BTreeMap::new();
        a.insert(p, VirtualDuration::from_millis(10));
        let mut b = BTreeMap::new();
        b.insert(p, VirtualDuration::from_millis(30));
        let r = ExecResult {
            phase_times: vec![a, b, BTreeMap::new()],
            rank_end: vec![],
            total: VirtualDuration::ZERO,
            events: 0,
        };
        assert_eq!(r.phase_max(p), VirtualDuration::from_millis(30));
        assert_eq!(r.phase_mean(p), VirtualDuration::from_millis(20));
        assert_eq!(r.phase_max(PhaseId(9)), VirtualDuration::ZERO);
    }
}
