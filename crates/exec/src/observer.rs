//! The measurement hook interface.
//!
//! The replay engine drives the simulated execution; an [`Observer`] is
//! the measurement system woven into it, exactly as Score-P is woven into
//! a real application by instrumentation. The observer
//!
//! * receives every observable event and may *charge overhead* for
//!   recording it (timer reads, buffer writes, perf-counter syscalls),
//! * learns about all work executed between events (the inputs of the
//!   logical effort models),
//! * learns about time spent inside the MPI/OpenMP runtime and in busy
//!   waiting (the inputs of the virtual hardware counter),
//! * supplies piggyback values carried on messages and collectives (the
//!   Lamport-clock synchronisation of Section II-B), and
//! * perturbs the execution globally through its cache footprint and the
//!   thread desynchronisation it induces.
//!
//! An uninstrumented run uses [`NullObserver`], which does nothing and
//! charges nothing.

use nrlt_prog::{Cost, RegionId};
use nrlt_sim::{Location, VirtualDuration, VirtualTime};
use nrlt_trace::CollectiveOp;

/// Computation executed by one location between two observable events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Static cost of the work (instructions, basic blocks, statements,
    /// flops, memory traffic) — the *application's* cost, without
    /// instrumentation.
    pub cost: Cost,
    /// OpenMP worksharing-loop iterations contained in this work (the
    /// quantity `lt_loop` counts). Zero outside loops.
    pub loop_iters: u64,
    /// Physical duration the engine computed for the work, including the
    /// effect of inline counting instructions.
    pub duration: VirtualDuration,
    /// Instrumentation instructions executed inline with the work (the
    /// counting code of `lt_bb`/`lt_stmt`/`lt_loop`). The virtual
    /// hardware counter retires these too.
    pub extra_instructions: u64,
}

/// An observable event, in program terms (the observer translates to
/// trace terms and applies filtering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventInfo {
    /// Enter a region (user function, MPI API, OpenMP construct).
    Enter {
        /// Region being entered.
        region: RegionId,
    },
    /// Leave a region.
    Leave {
        /// Region being left.
        region: RegionId,
    },
    /// `calls` fine-grained calls of `callee` completed between
    /// `phys_start` and now.
    Burst {
        /// Callee of every call in the burst.
        callee: RegionId,
        /// Number of calls.
        calls: u64,
        /// Physical time of the first call.
        phys_start: VirtualTime,
    },
    /// A message send was initiated.
    SendPost {
        /// Destination rank.
        peer: u32,
        /// Tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A receive was posted.
    RecvPost {
        /// Source rank.
        peer: u32,
        /// Tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A posted receive completed. The engine calls
    /// [`Observer::sync_logical`] with the sender's piggyback *before*
    /// this event, following Lamport's receive rule.
    RecvComplete {
        /// Source rank.
        peer: u32,
        /// Tag.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A collective completed on this location. [`Observer::sync_logical`]
    /// is called with the participants' maximum piggyback before this
    /// event.
    CollectiveEnd {
        /// Operation.
        op: CollectiveOp,
        /// Bytes per rank.
        bytes: u64,
        /// Root rank or `nrlt_trace::NO_ROOT`.
        root: u32,
    },
}

/// Why the runtime consumed CPU outside user code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Inside the MPI library (copies, protocol handling).
    Mpi,
    /// Inside the OpenMP runtime (fork, dispatch, barrier internals).
    Omp,
}

/// Measurement hooks. See module docs.
///
/// All methods take `&mut self`; the engine serialises calls and always
/// iterates locations in deterministic order, so observers need no
/// internal synchronisation.
pub trait Observer {
    /// Instructions the instrumentation adds inline to a block of work
    /// (per-basic-block or per-iteration counting code). The engine
    /// feeds these into the roofline: memory-bound kernels absorb them
    /// in their CPU slack, CPU-bound code pays for every one — which is
    /// why the paper sees ≈100 % overhead in MiniFE's call-dense
    /// initialisation but ≈0.2 % in its bandwidth-bound solver.
    fn counting_instructions(&self, _work_cost: &Cost, _loop_iters: u64) -> u64 {
        0
    }

    /// `loc` executed `work`. Returns any residual physical overhead not
    /// expressible as inline instructions (usually zero).
    fn on_work(&mut self, loc: Location, work: &WorkItem) -> VirtualDuration;

    /// `loc` spent `duration` inside the MPI or OpenMP runtime.
    fn on_runtime(&mut self, loc: Location, kind: RuntimeKind, duration: VirtualDuration);

    /// `loc` busy-waited for `duration` (blocked in MPI, or at an OpenMP
    /// barrier). Spinning retires instructions, which is how timing noise
    /// re-enters the `lt_hwctr` model.
    fn on_spin(&mut self, loc: Location, duration: VirtualDuration);

    /// An event occurred on `loc` at physical time `now`. Returns the
    /// physical overhead of observing it (zero if the observer filters
    /// the event, minus a possible filter-check cost).
    fn on_event(&mut self, loc: Location, now: VirtualTime, info: &EventInfo) -> VirtualDuration;

    /// Logical-clock value to piggyback on an outgoing message or
    /// collective contribution from `loc`. Physical-clock observers
    /// return 0.
    fn piggyback(&mut self, loc: Location) -> u64;

    /// Merge an incoming piggyback value into `loc`'s logical clock
    /// (Lamport receive rule: `C ← max(C, incoming + 1)`). Called before
    /// the corresponding completion event is emitted. No-op for physical
    /// clocks.
    fn sync_logical(&mut self, loc: Location, incoming: u64);

    /// Bytes of measurement state per location competing for cache
    /// (trace buffers). Charged against the socket's L3 in the duration
    /// model.
    fn cache_footprint_per_location(&self) -> u64;

    /// Thread desynchronisation induced by measurement, in `[0, 1]`:
    /// 0 = threads stay in lock-step (reference behaviour), 1 = fully
    /// decorrelated memory phases. Reduces bandwidth contention (Afzal
    /// et al.), the source of the paper's negative overheads.
    fn desync(&self) -> f64;
}

/// Observer for uninstrumented reference runs: charges nothing, records
/// nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_work(&mut self, _loc: Location, _work: &WorkItem) -> VirtualDuration {
        VirtualDuration::ZERO
    }

    fn on_runtime(&mut self, _loc: Location, _kind: RuntimeKind, _duration: VirtualDuration) {}

    fn on_spin(&mut self, _loc: Location, _duration: VirtualDuration) {}

    fn on_event(
        &mut self,
        _loc: Location,
        _now: VirtualTime,
        _info: &EventInfo,
    ) -> VirtualDuration {
        VirtualDuration::ZERO
    }

    fn piggyback(&mut self, _loc: Location) -> u64 {
        0
    }

    fn sync_logical(&mut self, _loc: Location, _incoming: u64) {}

    fn cache_footprint_per_location(&self) -> u64 {
        0
    }

    fn desync(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_free() {
        let mut o = NullObserver;
        let loc = Location::master(0);
        let w = WorkItem {
            cost: Cost::scalar(100),
            loop_iters: 0,
            duration: VirtualDuration::from_micros(5),
            extra_instructions: 0,
        };
        assert_eq!(o.on_work(loc, &w), VirtualDuration::ZERO);
        assert_eq!(
            o.on_event(loc, VirtualTime::ZERO, &EventInfo::Enter { region: RegionId(0) }),
            VirtualDuration::ZERO
        );
        assert_eq!(o.piggyback(loc), 0);
        assert_eq!(o.cache_footprint_per_location(), 0);
        assert_eq!(o.desync(), 0.0);
    }
}
