//! A bucketed ladder queue for the engine's ready list.
//!
//! The engine re-schedules a rank whenever one of its requests may have
//! completed. The original ready list was a plain FIFO `VecDeque`;
//! because the engine is *conservative* (an action's completion time is
//! computed only from already-determined times), any processing order
//! yields the same result, so the scheduler is free to pick an order
//! that keeps ranks close to each other in virtual time — which keeps
//! the matcher queues shallow and the books cache-resident.
//!
//! The ladder keys each entry by the rank's virtual time at push and
//! spreads entries over a ring of fixed-width buckets. Entries in the
//! past of the ring land in the current bucket; entries beyond the
//! ring's horizon spill into an overflow list that is re-bucketed when
//! the ring drains. Within a bucket, entries pop in push order — a
//! deterministic FIFO tie-break, so the schedule is a pure function of
//! the push sequence and never depends on hashing or pointer identity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Number of ring buckets. Power of two so the ring index is a mask.
const BUCKETS: usize = 64;

/// One overflow entry: ordered by `(time, push sequence)`, so equal
/// times pop in push order and the whole overflow order is a pure
/// function of the push sequence.
#[derive(Debug)]
struct Spill<T> {
    t: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Spill<T> {
    fn eq(&self, other: &Spill<T>) -> bool {
        (self.t, self.seq) == (other.t, other.seq)
    }
}

impl<T> Eq for Spill<T> {}

impl<T> PartialOrd for Spill<T> {
    fn partial_cmp(&self, other: &Spill<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Spill<T> {
    fn cmp(&self, other: &Spill<T>) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

/// A time-bucketed ready queue with deterministic FIFO tie-break.
///
/// `T` is the scheduled item (the engine schedules rank ids).
#[derive(Debug)]
pub struct LadderQueue<T> {
    /// Ring of buckets; `buckets[cur]` covers `[epoch, epoch + width)`.
    buckets: Vec<VecDeque<T>>,
    /// Virtual-time width of one bucket, in nanoseconds.
    width: u64,
    /// Start of the current bucket's time span.
    epoch: u64,
    /// Ring index of the current bucket.
    cur: usize,
    /// Entries scheduled beyond the ring's horizon, as a min-heap on
    /// `(time, push seq)`: a re-spread extracts exactly the entries
    /// inside the new horizon instead of cycling the whole list, which
    /// keeps far-out spills from turning the drain quadratic.
    overflow: BinaryHeap<Reverse<Spill<T>>>,
    /// Push counter, the overflow tie-break.
    seq: u64,
    /// Total entries (ring + overflow).
    len: usize,
    /// Times the overflow was re-bucketed into a fresh ring.
    respreads: u64,
}

impl<T> LadderQueue<T> {
    /// An empty ladder with the given bucket width (ns). A width of 0 is
    /// clamped to 1 so the ring always advances.
    pub fn new(width: u64) -> LadderQueue<T> {
        LadderQueue {
            buckets: (0..BUCKETS).map(|_| VecDeque::new()).collect(),
            width: width.max(1),
            epoch: 0,
            cur: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
            respreads: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries in the bucket the next pop will drain first.
    pub fn current_bucket_len(&self) -> usize {
        self.buckets[self.cur].len()
    }

    /// Times the overflow list was re-spread into the ring.
    pub fn respreads(&self) -> u64 {
        self.respreads
    }

    /// Queue `item` keyed by virtual time `t` (ns). Entries at or before
    /// the current bucket keep FIFO order inside it; entries beyond the
    /// ring spill to the overflow list.
    pub fn push(&mut self, t: u64, item: T) {
        self.len += 1;
        let horizon = self.epoch + self.width * BUCKETS as u64;
        if t >= horizon {
            self.seq += 1;
            self.overflow.push(Reverse(Spill { t, seq: self.seq, item }));
            return;
        }
        let slot = if t <= self.epoch { 0 } else { (t - self.epoch) / self.width };
        self.buckets[(self.cur + slot as usize) % BUCKETS].push_back(item);
    }

    /// Remove the next entry: the oldest entry of the earliest non-empty
    /// bucket. Returns `None` when the ladder is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        loop {
            for _ in 0..BUCKETS {
                if let Some(item) = self.buckets[self.cur].pop_front() {
                    self.len -= 1;
                    return Some(item);
                }
                self.cur = (self.cur + 1) % BUCKETS;
                self.epoch += self.width;
            }
            // Ring drained: jump the epoch to the earliest overflow entry
            // and pull exactly the entries inside the new horizon into
            // the ring, in (time, push seq) order.
            debug_assert!(!self.overflow.is_empty(), "len > 0 with empty ring and overflow");
            self.respreads += 1;
            self.epoch = self.overflow.peek().expect("overflow backs the remaining len").0.t;
            self.cur = 0;
            let horizon = self.epoch + self.width * BUCKETS as u64;
            while self.overflow.peek().is_some_and(|s| s.0.t < horizon) {
                let Reverse(s) = self.overflow.pop().expect("peeked entry");
                self.buckets[((s.t - self.epoch) / self.width) as usize].push_back(s.item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_buckets() {
        let mut q = LadderQueue::new(10);
        q.push(95, "d");
        q.push(5, "a");
        q.push(42, "c");
        q.push(17, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
    }

    #[test]
    fn ties_in_one_bucket_break_fifo() {
        let mut q = LadderQueue::new(100);
        // All five land in the same bucket: pop order must be push order,
        // regardless of the times within the bucket.
        q.push(70, 0);
        q.push(10, 1);
        q.push(40, 2);
        q.push(10, 3);
        q.push(99, 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn past_entries_join_the_current_bucket_fifo() {
        let mut q = LadderQueue::new(10);
        // Drain past the first bucket so the epoch advances.
        q.push(5, "x");
        assert_eq!(q.pop(), Some("x"));
        q.push(25, "late-a");
        assert_eq!(q.pop(), Some("late-a"));
        // The epoch is now ≥ 20; a push at t=3 is in the past and must
        // queue FIFO in the current bucket, not be lost or reordered.
        q.push(3, "past");
        q.push(3, "past2");
        assert_eq!(q.pop(), Some("past"));
        assert_eq!(q.pop(), Some("past2"));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_spills_and_respreads() {
        let mut q = LadderQueue::new(1);
        q.push(0, "now");
        // Far beyond the 64-bucket horizon: goes to overflow.
        q.push(1_000_000, "later-b");
        q.push(1_000_000, "later-c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some("now"));
        // Ring is empty; popping re-spreads the overflow (FIFO preserved).
        assert_eq!(q.pop(), Some("later-b"));
        assert_eq!(q.pop(), Some("later-c"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.respreads(), 1);
    }

    #[test]
    fn interleaved_push_pop_never_loses_entries() {
        let mut q = LadderQueue::new(7);
        let mut popped = 0u64;
        for round in 0..100u64 {
            q.push(round * 13, round);
            q.push(round * 13 + 5000, round + 1000);
            if round % 3 == 0 && q.pop().is_some() {
                popped += 1;
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 200);
        assert!(q.is_empty());
        assert_eq!(q.current_bucket_len(), 0);
    }

    #[test]
    fn zero_width_is_clamped() {
        let mut q = LadderQueue::new(0);
        q.push(3, 1);
        q.push(1, 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
    }
}
