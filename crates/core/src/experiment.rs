//! The experiment driver: the paper's measurement protocol as code.
//!
//! For one benchmark configuration (Section IV-B):
//!
//! 1. run the application five times without instrumentation (reference
//!    timings),
//! 2. run an instrumented measurement + trace analysis with the physical
//!    clock and each logical clock — repeating the noise-sensitive
//!    modes (`tsc`, `lt_hwctr`) five times,
//! 3. average the per-repetition call-path profiles,
//! 4. compare: overheads against the reference, Jaccard scores against
//!    `tsc`, minimum run-to-run Jaccard within each mode.

use crate::parallel::{effective_jobs, parallel_map_ordered};
use nrlt_analysis::{analyze_view, AnalysisConfig};
use nrlt_engineprof::{EngineProf, RunProf};
use nrlt_exec::{overhead_percent, ExecConfig, ExecResult};
use nrlt_measure::{
    measure_prepared_spilled, prepare_measure, reference_run_instrumented, ClockMode, FilterRules,
    MeasureConfig, MeasurePrep,
};
use nrlt_miniapps::BenchmarkInstance;
use nrlt_observe::{Observe, RunObserve};
use nrlt_profile::{jaccard, min_pairwise_jaccard, Profile};
use nrlt_prog::PhaseId;
use nrlt_sim::{NoiseConfig, VirtualDuration};
use nrlt_telemetry::sample::{self, frames};
use nrlt_telemetry::Telemetry;
use std::collections::BTreeMap;

/// Options of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Noise configuration of the simulated machine.
    pub noise: NoiseConfig,
    /// Repetitions for noise-sensitive measurements (the paper uses 5).
    pub repetitions: u32,
    /// Base seed; repetition `i` runs with `base_seed + i`.
    pub base_seed: u64,
    /// Clock modes to measure (defaults to all six).
    pub modes: Vec<ClockMode>,
    /// Worker threads for (mode, repetition) cells: `0` = available
    /// parallelism, `1` = serial. Every cell is seeded independently and
    /// results merge in (mode, repetition) order, so the output is
    /// byte-identical for every value.
    pub jobs: usize,
    /// Resident trace budget in bytes: `None` keeps every recorded event
    /// in memory (the historical path); `Some(bytes)` spills columnar
    /// chunks to a per-cell temp segment once the per-location streams
    /// exceed the budget, and analysis streams the segments back. The
    /// recorded event sequence is identical either way, so all results
    /// are byte-identical for every value.
    pub trace_budget: Option<u64>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            noise: NoiseConfig::realistic(),
            repetitions: 5,
            base_seed: 1000,
            modes: ClockMode::ALL.to_vec(),
            jobs: 0,
            trace_budget: None,
        }
    }
}

/// Results of all repetitions of one clock mode.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// The mode.
    pub mode: ClockMode,
    /// Per-repetition analysis profiles.
    pub profiles: Vec<Profile>,
    /// Cell-wise mean of the repetitions (the paper's evaluation basis).
    pub mean: Profile,
    /// Instrumented total run time per repetition.
    pub run_times: Vec<VirtualDuration>,
    /// Instrumented per-phase timings (max over ranks) per repetition.
    pub phase_times: Vec<BTreeMap<String, VirtualDuration>>,
    /// Engine events dispatched across all repetitions of this mode —
    /// the throughput numerator for events/sec KPIs.
    pub events: u64,
}

impl ModeResult {
    /// Mean instrumented run time.
    pub fn mean_run_time(&self) -> VirtualDuration {
        mean_duration(&self.run_times)
    }

    /// Mean instrumented duration of a named phase.
    pub fn mean_phase(&self, phase: &str) -> VirtualDuration {
        let values: Vec<VirtualDuration> =
            self.phase_times.iter().filter_map(|m| m.get(phase)).copied().collect();
        mean_duration(&values)
    }

    /// Minimum pairwise Jaccard J_(M,C) across this mode's repetitions
    /// (1.0 for a single repetition — logical modes are exactly
    /// repeatable).
    pub fn min_run_to_run_jaccard(&self) -> f64 {
        let maps: Vec<_> = self.profiles.iter().map(Profile::map_mc).collect();
        min_pairwise_jaccard(&maps)
    }
}

/// All measurements of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Configuration name (e.g. `MiniFE-2`).
    pub name: String,
    /// Uninstrumented reference runs.
    pub reference: Vec<ExecResult>,
    /// Reference phase name table.
    pub phase_names: Vec<String>,
    /// Per-mode results, in [`ExperimentOptions::modes`] order.
    pub modes: Vec<ModeResult>,
    /// Engine events dispatched across every cell of the experiment
    /// (reference and measured) — the throughput numerator for
    /// events/sec KPIs.
    pub events: u64,
}

impl ExperimentResult {
    /// The result for one mode.
    pub fn mode(&self, mode: ClockMode) -> &ModeResult {
        self.modes
            .iter()
            .find(|m| m.mode == mode)
            .unwrap_or_else(|| panic!("mode {mode} was not measured"))
    }

    /// Mean reference total run time.
    pub fn reference_time(&self) -> VirtualDuration {
        mean_duration(&self.reference.iter().map(|r| r.total).collect::<Vec<_>>())
    }

    /// Mean reference duration of a named phase (max over ranks per run).
    pub fn reference_phase(&self, phase: &str) -> VirtualDuration {
        let id = match self.phase_names.iter().position(|p| p == phase) {
            Some(i) => PhaseId(i as u32),
            None => return VirtualDuration::ZERO,
        };
        let values: Vec<VirtualDuration> = self.reference.iter().map(|r| r.phase_max(id)).collect();
        mean_duration(&values)
    }

    /// Total-run-time overhead of a mode vs the reference, percent.
    pub fn overhead_total(&self, mode: ClockMode) -> f64 {
        overhead_percent(self.reference_time(), self.mode(mode).mean_run_time())
    }

    /// Phase overhead of a mode vs the reference, percent.
    pub fn overhead_phase(&self, mode: ClockMode, phase: &str) -> f64 {
        overhead_percent(self.reference_phase(phase), self.mode(mode).mean_phase(phase))
    }

    /// J_(M,C) of a mode's mean profile against the `tsc` mean profile.
    pub fn jaccard_vs_tsc(&self, mode: ClockMode) -> f64 {
        let tsc = self.mode(ClockMode::Tsc).mean.map_mc();
        let other = self.mode(mode).mean.map_mc();
        jaccard(&tsc, &other)
    }
}

fn mean_duration(values: &[VirtualDuration]) -> VirtualDuration {
    if values.is_empty() {
        return VirtualDuration::ZERO;
    }
    let sum: u64 = values.iter().map(|d| d.nanos()).sum();
    VirtualDuration::from_nanos(sum / values.len() as u64)
}

/// The [`ExecConfig`] for one repetition of an instance.
pub fn exec_config_for(instance: &BenchmarkInstance, noise: &NoiseConfig, seed: u64) -> ExecConfig {
    ExecConfig::jureca(instance.nodes, instance.layout.clone(), seed).with_noise(noise.clone())
}

/// Measurement configuration for an instance under `mode`, applying the
/// instance's filter rules.
pub fn measure_config_for(instance: &BenchmarkInstance, mode: ClockMode) -> MeasureConfig {
    MeasureConfig::new(mode)
        .with_filter(FilterRules::from_rules(instance.filter_rules.iter().cloned()))
}

/// Run one clock mode (with the appropriate number of repetitions).
pub fn run_mode(
    instance: &BenchmarkInstance,
    mode: ClockMode,
    options: &ExperimentOptions,
) -> ModeResult {
    run_mode_with(instance, measure_config_for(instance, mode), options)
}

/// [`run_mode`] with optional self-telemetry.
pub fn run_mode_telemetry(
    instance: &BenchmarkInstance,
    mode: ClockMode,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
) -> ModeResult {
    run_mode_with_telemetry(instance, measure_config_for(instance, mode), options, tel)
}

/// Like [`run_mode`], with an explicit measurement configuration — the
/// entry point for ablation studies that tweak overhead or effort
/// parameters away from their calibrated defaults.
pub fn run_mode_with(
    instance: &BenchmarkInstance,
    mcfg: MeasureConfig,
    options: &ExperimentOptions,
) -> ModeResult {
    run_mode_with_telemetry(instance, mcfg, options, None)
}

/// One measured (mode, repetition) cell: what the merge step needs.
struct CellResult {
    profile: Profile,
    run_time: VirtualDuration,
    phases: BTreeMap<String, VirtualDuration>,
    events: u64,
}

/// The per-cell analysis configuration under a fan-out of `fan` workers.
/// When cells themselves run concurrently, the delay phase inside each
/// cell runs single-threaded — nesting thread pools on a machine already
/// saturated by cells only adds contention. Its chunked merge is
/// order-preserving either way, so this is a scheduling choice, not a
/// result change.
fn cell_analysis_config(fan: usize) -> AnalysisConfig {
    AnalysisConfig { delay_costs: true, workers: if fan > 1 { 1 } else { 0 } }
}

/// Measure + analyze one repetition of one mode. Fully self-contained:
/// the seed derives from `base_seed + rep`, the trace and analysis are
/// cell-local, and the shared preparation is read-only. When `obs` is
/// set, the cell records its machine observations under the
/// deterministic run name `{instance}:{mode}:rep{rep}` and attaches
/// them on completion — the keyed merge makes the bundle independent of
/// worker count and completion order.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    instance: &BenchmarkInstance,
    prep: &MeasurePrep,
    mcfg: &MeasureConfig,
    options: &ExperimentOptions,
    acfg: &AnalysisConfig,
    rep: u32,
    tel: Option<&Telemetry>,
    obs: Option<&Observe>,
    prof: Option<&EngineProf>,
) -> CellResult {
    let _frame = sample::frame(frames::MODE_CELL);
    let run =
        obs.map(|_| RunObserve::new(format!("{}:{}:rep{rep}", instance.name, mcfg.mode.name())));
    let prof_run =
        prof.map(|_| RunProf::new(format!("{}:{}:rep{rep}", instance.name, mcfg.mode.name())));
    let cfg = exec_config_for(instance, &options.noise, options.base_seed + rep as u64);
    let (trace, result) = measure_prepared_spilled(
        &instance.program,
        prep,
        &cfg,
        mcfg,
        options.trace_budget,
        tel,
        run.as_ref(),
        prof_run.as_ref(),
    );
    let profile = analyze_view(&trace.view(), acfg, tel, run.as_ref());
    let mut phases = BTreeMap::new();
    for (i, name) in instance.program.phases.iter().enumerate() {
        phases.insert(name.clone(), result.phase_max(PhaseId(i as u32)));
    }
    if let Some(t) = tel {
        t.incr("experiment.repetitions");
    }
    if let (Some(o), Some(run)) = (obs, run) {
        o.attach(run);
    }
    if let (Some(p), Some(run)) = (prof, prof_run) {
        let (name, data) = run.finish();
        p.attach(name, data);
    }
    CellResult { profile, run_time: result.total, phases, events: result.events }
}

fn mode_repetitions(mode: ClockMode, options: &ExperimentOptions) -> u32 {
    if mode.is_noise_free() {
        1
    } else {
        options.repetitions.max(1)
    }
}

/// [`run_mode_with`] with optional self-telemetry: every repetition runs
/// under a `mode:{name}` span (on its worker's telemetry track when
/// repetitions fan out), with measurement + analysis reporting their own
/// spans and counters underneath. `None` adds zero telemetry work.
pub fn run_mode_with_telemetry(
    instance: &BenchmarkInstance,
    mcfg: MeasureConfig,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
) -> ModeResult {
    run_mode_with_observed(instance, mcfg, options, tel, None)
}

/// [`run_mode_with_telemetry`] with an optional resource observatory
/// ([`nrlt_observe`]): every cell records counter timelines, noise
/// draws, and wait-state provenance for the simulated machine under a
/// deterministic run name. `None` performs zero observability work.
pub fn run_mode_with_observed(
    instance: &BenchmarkInstance,
    mcfg: MeasureConfig,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
    obs: Option<&Observe>,
) -> ModeResult {
    run_mode_with_instrumented(instance, mcfg, options, tel, obs, None)
}

/// [`run_mode_with_observed`] with an optional engine self-profiler
/// ([`nrlt_engineprof`]): every cell accounts the replay engine's own
/// per-event-kind costs, queue occupancy, and hot-loop allocations under
/// the deterministic run name `{instance}:{mode}:rep{rep}`. The keyed
/// merge makes the profile independent of worker count. `None` performs
/// zero profiling work.
pub fn run_mode_with_instrumented(
    instance: &BenchmarkInstance,
    mcfg: MeasureConfig,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
    obs: Option<&Observe>,
    prof: Option<&EngineProf>,
) -> ModeResult {
    let mode = mcfg.mode;
    let reps = mode_repetitions(mode, options);
    let prep = prepare_measure(
        &instance.program,
        &exec_config_for(instance, &options.noise, options.base_seed),
    );
    let fan = effective_jobs(options.jobs).min(reps as usize);
    let acfg = cell_analysis_config(fan);
    let cells = parallel_map_ordered((0..reps).collect(), options.jobs, |_, rep| {
        let _span = tel.map(|t| t.span_cat(format!("mode:{}", mode.name()), "experiment"));
        run_cell(instance, &prep, &mcfg, options, &acfg, rep, tel, obs, prof)
    });
    merge_mode(mode, cells)
}

/// Fold cell results — already in repetition order — into a [`ModeResult`].
fn merge_mode(mode: ClockMode, cells: Vec<CellResult>) -> ModeResult {
    let _frame = sample::frame(frames::EXPERIMENT_MERGE);
    let mut profiles = Vec::with_capacity(cells.len());
    let mut run_times = Vec::with_capacity(cells.len());
    let mut phase_times = Vec::with_capacity(cells.len());
    let mut events = 0u64;
    for cell in cells {
        profiles.push(cell.profile);
        run_times.push(cell.run_time);
        phase_times.push(cell.phases);
        events += cell.events;
    }
    let mean = Profile::mean(&profiles);
    ModeResult { mode, profiles, mean, run_times, phase_times, events }
}

/// Run the full protocol for one configuration.
pub fn run_experiment(
    instance: &BenchmarkInstance,
    options: &ExperimentOptions,
) -> ExperimentResult {
    run_experiment_telemetry(instance, options, None)
}

/// One unit of the experiment fan-out: an uninstrumented reference
/// repetition or an instrumented (mode, repetition) measurement.
enum Cell {
    Reference { rep: u32 },
    Mode { mode_idx: usize, rep: u32 },
}

enum CellOutput {
    Reference(ExecResult),
    Mode { mode_idx: usize, result: CellResult },
}

/// [`run_experiment`] with optional self-telemetry: every reference run
/// is wrapped in an `experiment.reference` span and every (mode,
/// repetition) cell in a `mode:{name}` span, with the engine,
/// measurement, and analysis layers reporting underneath. `None` adds
/// zero telemetry work.
///
/// All cells — reference repetitions and (mode, repetition)
/// measurements — fan out together over [`ExperimentOptions::jobs`]
/// workers. Each cell derives its RNG stream from the base seed alone
/// and shares only read-only preparation, and the merge walks the cell
/// list in its deterministic construction order, so the result is
/// byte-identical to the serial path for any worker count.
pub fn run_experiment_telemetry(
    instance: &BenchmarkInstance,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
) -> ExperimentResult {
    run_experiment_observed(instance, options, tel, None)
}

/// [`run_experiment_telemetry`] with an optional resource observatory
/// ([`nrlt_observe`]): every cell — reference and measured — records
/// counter timelines, noise attribution, and wait-state provenance for
/// the simulated machine. Runs are keyed `{instance}:{mode}:rep{rep}`
/// (references as `{instance}:ref:rep{rep}`), so the merged bundle is
/// byte-identical for any worker count. `None` performs zero
/// observability work.
pub fn run_experiment_observed(
    instance: &BenchmarkInstance,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
    obs: Option<&Observe>,
) -> ExperimentResult {
    run_experiment_instrumented(instance, options, tel, obs, None)
}

/// [`run_experiment_observed`] with an optional engine self-profiler
/// ([`nrlt_engineprof`]): every cell — reference and measured — accounts
/// the replay engine's per-event-kind costs, queue occupancy, and
/// hot-loop allocations under deterministic run names
/// (`{instance}:{mode}:rep{rep}`, references as
/// `{instance}:ref:rep{rep}`), so the merged profile is byte-identical
/// for any worker count. `None` performs zero profiling work.
pub fn run_experiment_instrumented(
    instance: &BenchmarkInstance,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
    obs: Option<&Observe>,
    prof: Option<&EngineProf>,
) -> ExperimentResult {
    // Read-only, run-invariant setup, hoisted so a 30-cell sweep interns
    // regions and builds the Arc-shared definition tables exactly once.
    let prep = prepare_measure(
        &instance.program,
        &exec_config_for(instance, &options.noise, options.base_seed),
    );
    let mode_cfgs: Vec<MeasureConfig> =
        options.modes.iter().map(|&mode| measure_config_for(instance, mode)).collect();

    // The cell list fixes the merge order: reference repetitions first,
    // then modes in `options.modes` order, repetitions ascending.
    let ref_reps = options.repetitions.max(1);
    let mut cells: Vec<Cell> = (0..ref_reps).map(|rep| Cell::Reference { rep }).collect();
    for (mode_idx, &mode) in options.modes.iter().enumerate() {
        for rep in 0..mode_repetitions(mode, options) {
            cells.push(Cell::Mode { mode_idx, rep });
        }
    }

    let fan = effective_jobs(options.jobs).min(cells.len());
    let acfg = cell_analysis_config(fan);
    let outputs = parallel_map_ordered(cells, options.jobs, |_, cell| match cell {
        Cell::Reference { rep } => {
            let _span = tel.map(|t| t.span_cat("experiment.reference", "experiment"));
            let _frame = sample::frame(frames::EXPERIMENT_REFERENCE);
            let run = obs.map(|_| RunObserve::new(format!("{}:ref:rep{rep}", instance.name)));
            let prof_run = prof.map(|_| RunProf::new(format!("{}:ref:rep{rep}", instance.name)));
            let cfg =
                exec_config_for(instance, &options.noise, options.base_seed + 100 + rep as u64);
            let result = reference_run_instrumented(
                &instance.program,
                &cfg,
                run.as_ref(),
                prof_run.as_ref(),
            );
            if let (Some(o), Some(run)) = (obs, run) {
                o.attach(run);
            }
            if let (Some(p), Some(prun)) = (prof, prof_run) {
                let (name, data) = prun.finish();
                p.attach(name, data);
            }
            CellOutput::Reference(result)
        }
        Cell::Mode { mode_idx, rep } => {
            let mcfg = &mode_cfgs[mode_idx];
            let _span = tel.map(|t| t.span_cat(format!("mode:{}", mcfg.mode.name()), "experiment"));
            let result = run_cell(instance, &prep, mcfg, options, &acfg, rep, tel, obs, prof);
            CellOutput::Mode { mode_idx, result }
        }
    });

    // Deterministic merge: outputs arrive in cell-list order regardless
    // of which worker ran what.
    let mut reference = Vec::with_capacity(ref_reps as usize);
    let mut per_mode: Vec<Vec<CellResult>> = options.modes.iter().map(|_| Vec::new()).collect();
    for output in outputs {
        match output {
            CellOutput::Reference(r) => reference.push(r),
            CellOutput::Mode { mode_idx, result } => per_mode[mode_idx].push(result),
        }
    }
    let modes: Vec<ModeResult> =
        options.modes.iter().zip(per_mode).map(|(&mode, cells)| merge_mode(mode, cells)).collect();
    let events = reference.iter().map(|r| r.events).sum::<u64>()
        + modes.iter().map(|m| m.events).sum::<u64>();
    ExperimentResult {
        name: instance.name.clone(),
        reference,
        phase_names: instance.program.phases.clone(),
        modes,
        events,
    }
}
