//! The experiment driver: the paper's measurement protocol as code.
//!
//! For one benchmark configuration (Section IV-B):
//!
//! 1. run the application five times without instrumentation (reference
//!    timings),
//! 2. run an instrumented measurement + trace analysis with the physical
//!    clock and each logical clock — repeating the noise-sensitive
//!    modes (`tsc`, `lt_hwctr`) five times,
//! 3. average the per-repetition call-path profiles,
//! 4. compare: overheads against the reference, Jaccard scores against
//!    `tsc`, minimum run-to-run Jaccard within each mode.

use nrlt_analysis::{analyze_telemetry, AnalysisConfig};
use nrlt_exec::{overhead_percent, ExecConfig, ExecResult};
use nrlt_measure::{measure_telemetry, reference_run, ClockMode, FilterRules, MeasureConfig};
use nrlt_miniapps::BenchmarkInstance;
use nrlt_profile::{jaccard, min_pairwise_jaccard, Profile};
use nrlt_prog::PhaseId;
use nrlt_sim::{NoiseConfig, VirtualDuration};
use nrlt_telemetry::Telemetry;
use std::collections::BTreeMap;

/// Options of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Noise configuration of the simulated machine.
    pub noise: NoiseConfig,
    /// Repetitions for noise-sensitive measurements (the paper uses 5).
    pub repetitions: u32,
    /// Base seed; repetition `i` runs with `base_seed + i`.
    pub base_seed: u64,
    /// Clock modes to measure (defaults to all six).
    pub modes: Vec<ClockMode>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            noise: NoiseConfig::realistic(),
            repetitions: 5,
            base_seed: 1000,
            modes: ClockMode::ALL.to_vec(),
        }
    }
}

/// Results of all repetitions of one clock mode.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// The mode.
    pub mode: ClockMode,
    /// Per-repetition analysis profiles.
    pub profiles: Vec<Profile>,
    /// Cell-wise mean of the repetitions (the paper's evaluation basis).
    pub mean: Profile,
    /// Instrumented total run time per repetition.
    pub run_times: Vec<VirtualDuration>,
    /// Instrumented per-phase timings (max over ranks) per repetition.
    pub phase_times: Vec<BTreeMap<String, VirtualDuration>>,
}

impl ModeResult {
    /// Mean instrumented run time.
    pub fn mean_run_time(&self) -> VirtualDuration {
        mean_duration(&self.run_times)
    }

    /// Mean instrumented duration of a named phase.
    pub fn mean_phase(&self, phase: &str) -> VirtualDuration {
        let values: Vec<VirtualDuration> =
            self.phase_times.iter().filter_map(|m| m.get(phase)).copied().collect();
        mean_duration(&values)
    }

    /// Minimum pairwise Jaccard J_(M,C) across this mode's repetitions
    /// (1.0 for a single repetition — logical modes are exactly
    /// repeatable).
    pub fn min_run_to_run_jaccard(&self) -> f64 {
        let maps: Vec<_> = self.profiles.iter().map(Profile::map_mc).collect();
        min_pairwise_jaccard(&maps)
    }
}

/// All measurements of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Configuration name (e.g. `MiniFE-2`).
    pub name: String,
    /// Uninstrumented reference runs.
    pub reference: Vec<ExecResult>,
    /// Reference phase name table.
    pub phase_names: Vec<String>,
    /// Per-mode results, in [`ExperimentOptions::modes`] order.
    pub modes: Vec<ModeResult>,
}

impl ExperimentResult {
    /// The result for one mode.
    pub fn mode(&self, mode: ClockMode) -> &ModeResult {
        self.modes
            .iter()
            .find(|m| m.mode == mode)
            .unwrap_or_else(|| panic!("mode {mode} was not measured"))
    }

    /// Mean reference total run time.
    pub fn reference_time(&self) -> VirtualDuration {
        mean_duration(&self.reference.iter().map(|r| r.total).collect::<Vec<_>>())
    }

    /// Mean reference duration of a named phase (max over ranks per run).
    pub fn reference_phase(&self, phase: &str) -> VirtualDuration {
        let id = match self.phase_names.iter().position(|p| p == phase) {
            Some(i) => PhaseId(i as u32),
            None => return VirtualDuration::ZERO,
        };
        let values: Vec<VirtualDuration> = self.reference.iter().map(|r| r.phase_max(id)).collect();
        mean_duration(&values)
    }

    /// Total-run-time overhead of a mode vs the reference, percent.
    pub fn overhead_total(&self, mode: ClockMode) -> f64 {
        overhead_percent(self.reference_time(), self.mode(mode).mean_run_time())
    }

    /// Phase overhead of a mode vs the reference, percent.
    pub fn overhead_phase(&self, mode: ClockMode, phase: &str) -> f64 {
        overhead_percent(self.reference_phase(phase), self.mode(mode).mean_phase(phase))
    }

    /// J_(M,C) of a mode's mean profile against the `tsc` mean profile.
    pub fn jaccard_vs_tsc(&self, mode: ClockMode) -> f64 {
        let tsc = self.mode(ClockMode::Tsc).mean.map_mc();
        let other = self.mode(mode).mean.map_mc();
        jaccard(&tsc, &other)
    }
}

fn mean_duration(values: &[VirtualDuration]) -> VirtualDuration {
    if values.is_empty() {
        return VirtualDuration::ZERO;
    }
    let sum: u64 = values.iter().map(|d| d.nanos()).sum();
    VirtualDuration::from_nanos(sum / values.len() as u64)
}

/// The [`ExecConfig`] for one repetition of an instance.
pub fn exec_config_for(instance: &BenchmarkInstance, noise: &NoiseConfig, seed: u64) -> ExecConfig {
    ExecConfig::jureca(instance.nodes, instance.layout.clone(), seed).with_noise(noise.clone())
}

/// Measurement configuration for an instance under `mode`, applying the
/// instance's filter rules.
pub fn measure_config_for(instance: &BenchmarkInstance, mode: ClockMode) -> MeasureConfig {
    MeasureConfig::new(mode)
        .with_filter(FilterRules::from_rules(instance.filter_rules.iter().cloned()))
}

/// Run one clock mode (with the appropriate number of repetitions).
pub fn run_mode(
    instance: &BenchmarkInstance,
    mode: ClockMode,
    options: &ExperimentOptions,
) -> ModeResult {
    run_mode_with(instance, measure_config_for(instance, mode), options)
}

/// [`run_mode`] with optional self-telemetry.
pub fn run_mode_telemetry(
    instance: &BenchmarkInstance,
    mode: ClockMode,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
) -> ModeResult {
    run_mode_with_telemetry(instance, measure_config_for(instance, mode), options, tel)
}

/// Like [`run_mode`], with an explicit measurement configuration — the
/// entry point for ablation studies that tweak overhead or effort
/// parameters away from their calibrated defaults.
pub fn run_mode_with(
    instance: &BenchmarkInstance,
    mcfg: MeasureConfig,
    options: &ExperimentOptions,
) -> ModeResult {
    run_mode_with_telemetry(instance, mcfg, options, None)
}

/// [`run_mode_with`] with optional self-telemetry: one `mode:{name}` span
/// wraps all repetitions, and measurement + analysis report their own
/// spans and counters underneath it. `None` adds zero telemetry work.
pub fn run_mode_with_telemetry(
    instance: &BenchmarkInstance,
    mcfg: MeasureConfig,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
) -> ModeResult {
    let mode = mcfg.mode;
    let _span = tel.map(|t| t.span_cat(format!("mode:{}", mode.name()), "experiment"));
    let reps = if mode.is_noise_free() { 1 } else { options.repetitions.max(1) };
    let mut profiles = Vec::new();
    let mut run_times = Vec::new();
    let mut phase_times = Vec::new();
    for rep in 0..reps {
        let cfg = exec_config_for(instance, &options.noise, options.base_seed + rep as u64);
        let (trace, result) = measure_telemetry(&instance.program, &cfg, &mcfg, tel);
        profiles.push(analyze_telemetry(&trace, &AnalysisConfig::default(), tel));
        run_times.push(result.total);
        let mut phases = BTreeMap::new();
        for (i, name) in instance.program.phases.iter().enumerate() {
            phases.insert(name.clone(), result.phase_max(PhaseId(i as u32)));
        }
        phase_times.push(phases);
        if let Some(t) = tel {
            t.incr("experiment.repetitions");
        }
    }
    let mean = Profile::mean(&profiles);
    ModeResult { mode, profiles, mean, run_times, phase_times }
}

/// Run the full protocol for one configuration.
pub fn run_experiment(
    instance: &BenchmarkInstance,
    options: &ExperimentOptions,
) -> ExperimentResult {
    run_experiment_telemetry(instance, options, None)
}

/// [`run_experiment`] with optional self-telemetry: reference runs are
/// wrapped in an `experiment.reference` span, every mode in its own
/// `mode:{name}` span, with the engine, measurement, and analysis layers
/// reporting underneath. `None` adds zero telemetry work.
pub fn run_experiment_telemetry(
    instance: &BenchmarkInstance,
    options: &ExperimentOptions,
    tel: Option<&Telemetry>,
) -> ExperimentResult {
    let reference = {
        let _span = tel.map(|t| t.span_cat("experiment.reference", "experiment"));
        (0..options.repetitions.max(1))
            .map(|rep| {
                let cfg =
                    exec_config_for(instance, &options.noise, options.base_seed + 100 + rep as u64);
                reference_run(&instance.program, &cfg)
            })
            .collect()
    };
    let modes = options
        .modes
        .iter()
        .map(|&mode| run_mode_telemetry(instance, mode, options, tel))
        .collect();
    ExperimentResult {
        name: instance.name.clone(),
        reference,
        phase_names: instance.program.phases.clone(),
        modes,
    }
}
