//! Zero-dependency ordered parallel map for experiment cells.
//!
//! The experiment protocol is embarrassingly parallel: every (mode,
//! repetition) cell derives its own RNG stream from the base seed and
//! shares nothing mutable with any other cell. [`parallel_map_ordered`]
//! fans such cells out onto `std::thread::scope` workers and returns the
//! results **in input order**, so a caller that merges them sequentially
//! produces byte-identical output no matter how many workers ran.
//!
//! Each worker runs under its own telemetry track
//! ([`nrlt_telemetry::set_track`]), so spans emitted by the layers below
//! (measurement, engine, analysis) land on per-worker timelines instead
//! of interleaving on track 0.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a `--jobs` value: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs != 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Apply `f` to every item, using up to `jobs` worker threads (`0` =
/// available parallelism), and return the results in input order.
///
/// With one effective worker (or zero/one items) everything runs on the
/// caller's thread with no threads spawned — the serial fast path is the
/// exact loop a sequential caller would have written. With more, workers
/// claim items from an atomic cursor and park each result in its input
/// slot; the final collect reads the slots front to back, which is what
/// makes the merge order — and therefore any downstream float
/// accumulation — independent of scheduling.
///
/// `f` receives `(index, item)` so cells can derive seeds or labels from
/// their position without the caller pre-zipping.
pub fn parallel_map_ordered<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len());
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let inputs = &inputs;
            let outputs = &outputs;
            let cursor = &cursor;
            scope.spawn(move || {
                // Track 0 stays reserved for the coordinating thread.
                let _track = nrlt_telemetry::set_track(w as u32 + 1);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= inputs.len() {
                        break;
                    }
                    let item = inputs[i].lock().unwrap().take().expect("cell claimed twice");
                    let result = f(i, item);
                    *outputs[i].lock().unwrap() = Some(result);
                }
            });
        }
    });
    outputs
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker left an empty result slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn preserves_input_order() {
        for jobs in [1, 2, 4, 16] {
            let out = parallel_map_ordered((0..100).collect(), jobs, |i, x: u64| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = parallel_map_ordered(Vec::new(), 4, |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map_ordered(vec![7u32], 4, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn workers_get_distinct_tracks() {
        let tracks: Vec<u32> = parallel_map_ordered((0..64).collect(), 4, |_, _x: u32| {
            nrlt_telemetry::current_track()
        });
        // Serial caller would report track 0; workers must not.
        assert!(tracks.iter().all(|&t| t >= 1));
    }
}
