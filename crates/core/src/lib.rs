//! # nrlt-core — noise-resilient logical timers
//!
//! The umbrella crate of the reproduction of *"Are Noise-Resilient
//! Logical Timers Useful for Performance Analysis?"* (SC 2024): a
//! Score-P-like measurement system with a Lamport logical clock and five
//! effort models, a Scalasca-like wait-state analyzer, a Cube-like
//! profile model with generalized Jaccard scoring, a simulated
//! MPI+OpenMP execution substrate with noise injection, and the paper's
//! three mini-app skeletons.
//!
//! ## Quick start
//!
//! ```
//! use nrlt_core::prelude::*;
//!
//! // A tiny imbalanced program: rank 1 computes twice as much.
//! let mut pb = ProgramBuilder::new(2);
//! for r in 0..2 {
//!     let mut rb = pb.rank(r);
//!     rb.scoped("main", |rb| {
//!         rb.kernel(Cost::scalar(if r == 1 { 4_000_000 } else { 2_000_000 }), 0);
//!         rb.allreduce(8);
//!     });
//! }
//! let program = pb.finish();
//!
//! // Measure it with the statement-counting logical clock.
//! let cfg = ExecConfig::jureca(1, JobLayout::block(2, 1), 42);
//! let (trace, _) = measure(&program, &cfg, &MeasureConfig::new(ClockMode::LtStmt));
//! let profile = analyze(&trace);
//!
//! // The imbalance shows up as waiting at the N×N collective.
//! assert!(profile.pct_t(Metric::WaitNxN) > 5.0);
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod parallel;

pub use experiment::{
    exec_config_for, measure_config_for, run_experiment, run_experiment_instrumented,
    run_experiment_observed, run_experiment_telemetry, run_mode, run_mode_telemetry, run_mode_with,
    run_mode_with_instrumented, run_mode_with_observed, run_mode_with_telemetry, ExperimentOptions,
    ExperimentResult, ModeResult,
};
pub use parallel::{effective_jobs, parallel_map_ordered};

// Re-export the component crates under stable names.
pub use nrlt_analysis as analysis;
pub use nrlt_engineprof as engineprof;
pub use nrlt_exec as exec;
pub use nrlt_measure as measure_sys;
pub use nrlt_miniapps as miniapps;
pub use nrlt_mpisim as mpisim;
pub use nrlt_observe as observe;
pub use nrlt_ompsim as ompsim;
pub use nrlt_profile as profile;
pub use nrlt_prog as prog;
pub use nrlt_sim as sim;
pub use nrlt_telemetry as telemetry;
pub use nrlt_trace as trace;

/// The most commonly used items in one import.
pub mod prelude {
    pub use nrlt_analysis::{analyze, analyze_with, AnalysisConfig};
    pub use nrlt_exec::{execute, overhead_percent, ExecConfig, NullObserver};
    pub use nrlt_measure::{measure, reference_run, ClockMode, FilterRules, MeasureConfig};
    pub use nrlt_miniapps::{
        all_configurations, lulesh_1, lulesh_2, minife_1, minife_2, tealeaf_1, tealeaf_2,
        tealeaf_3, tealeaf_4, BenchmarkInstance,
    };
    pub use nrlt_profile::{
        callpath_table, jaccard, metric_table, min_pairwise_jaccard, paradigm_summary, CallPathId,
        Metric, Profile,
    };
    pub use nrlt_prog::{Cost, IterCost, Program, ProgramBuilder, Schedule};
    pub use nrlt_sim::{JobLayout, Machine, NoiseConfig, VirtualDuration, VirtualTime};
    pub use nrlt_telemetry::Telemetry;
    pub use nrlt_trace::{ClockKind, Trace};

    pub use crate::experiment::{
        run_experiment, run_experiment_telemetry, run_mode, run_mode_telemetry, ExperimentOptions,
        ExperimentResult, ModeResult,
    };
}
