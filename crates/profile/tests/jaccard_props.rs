//! Property tests for the generalized Jaccard score: bounds, symmetry,
//! identity, monotonicity under perturbation. A deterministic
//! splitmix64 generator replaces proptest so the suite runs with no
//! external dependencies.

use nrlt_profile::{jaccard, min_pairwise_jaccard, total_variation};
use std::collections::BTreeMap;

/// Deterministic pseudo-random generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A random contribution map: up to 30 keys in 0..40, values in
    /// [0, 100).
    fn map(&mut self) -> BTreeMap<u32, f64> {
        let n = self.below(30) as usize;
        (0..n).map(|_| (self.below(40) as u32, self.f64() * 100.0)).collect()
    }
}

#[test]
fn jaccard_is_bounded_and_symmetric() {
    let mut g = Gen(10);
    for _case in 0..300 {
        let a = g.map();
        let b = g.map();
        let j = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&j), "out of bounds: {j}");
        let j2 = jaccard(&b, &a);
        assert!((j - j2).abs() < 1e-12, "asymmetric: {j} vs {j2}");
    }
}

#[test]
fn jaccard_identity() {
    let mut g = Gen(11);
    for _case in 0..300 {
        let a = g.map();
        assert_eq!(jaccard(&a, &a), 1.0);
    }
}

#[test]
fn jaccard_scale_consistency() {
    let mut g = Gen(12);
    for _case in 0..300 {
        let a = g.map();
        let b = g.map();
        let s = 0.1 + g.f64() * 9.9;
        // Scaling both maps together preserves the score.
        let scale = |m: &BTreeMap<u32, f64>| -> BTreeMap<u32, f64> {
            m.iter().map(|(&k, &v)| (k, v * s)).collect()
        };
        let j1 = jaccard(&a, &b);
        let j2 = jaccard(&scale(&a), &scale(&b));
        assert!((j1 - j2).abs() < 1e-9);
    }
}

#[test]
fn perturbation_lowers_the_score() {
    let mut g = Gen(13);
    for _case in 0..300 {
        let a = g.map();
        let key = g.below(40) as u32;
        let bump = 1.0 + g.f64() * 99.0;
        // Adding mass to one side can only keep or lower the score…
        let mut b = a.clone();
        *b.entry(key).or_insert(0.0) += bump;
        let j = jaccard(&a, &b);
        assert!(j <= 1.0 + 1e-12);
        // …and strictly lowers it when `a` has any mass at all.
        if a.values().any(|&v| v > 0.0) {
            assert!(j < 1.0);
        }
    }
}

#[test]
fn min_pairwise_is_a_lower_bound() {
    let mut g = Gen(14);
    for _case in 0..150 {
        let n = 2 + g.below(3) as usize;
        let maps: Vec<BTreeMap<u32, f64>> = (0..n).map(|_| g.map()).collect();
        let min = min_pairwise_jaccard(&maps);
        for i in 0..maps.len() {
            for j in (i + 1)..maps.len() {
                assert!(jaccard(&maps[i], &maps[j]) >= min - 1e-12);
            }
        }
    }
}

#[test]
fn total_variation_is_a_metric_ish() {
    let mut g = Gen(15);
    for _case in 0..300 {
        let a = g.map();
        let b = g.map();
        let tv = total_variation(&a, &b);
        assert!(tv >= 0.0);
        assert!((total_variation(&a, &a)).abs() < 1e-12);
        assert!((tv - total_variation(&b, &a)).abs() < 1e-12);
    }
}
