//! Property tests for the generalized Jaccard score: bounds, symmetry,
//! identity, monotonicity under perturbation.

use nrlt_profile::{jaccard, min_pairwise_jaccard, total_variation};
use proptest::prelude::*;
use std::collections::HashMap;

fn map_strategy() -> impl Strategy<Value = HashMap<u32, f64>> {
    proptest::collection::hash_map(0u32..40, 0.0f64..100.0, 0..30)
}

proptest! {
    #[test]
    fn jaccard_is_bounded_and_symmetric(a in map_strategy(), b in map_strategy()) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j), "out of bounds: {j}");
        let j2 = jaccard(&b, &a);
        prop_assert!((j - j2).abs() < 1e-12, "asymmetric: {j} vs {j2}");
    }

    #[test]
    fn jaccard_identity(a in map_strategy()) {
        prop_assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_scale_consistency(a in map_strategy(), b in map_strategy(), s in 0.1f64..10.0) {
        // Scaling both maps together preserves the score.
        let scale = |m: &HashMap<u32, f64>| -> HashMap<u32, f64> {
            m.iter().map(|(&k, &v)| (k, v * s)).collect()
        };
        let j1 = jaccard(&a, &b);
        let j2 = jaccard(&scale(&a), &scale(&b));
        prop_assert!((j1 - j2).abs() < 1e-9);
    }

    #[test]
    fn perturbation_lowers_the_score(a in map_strategy(), key in 0u32..40, bump in 1.0f64..100.0) {
        // Adding mass to one side can only keep or lower the score…
        let mut b = a.clone();
        *b.entry(key).or_insert(0.0) += bump;
        let j = jaccard(&a, &b);
        prop_assert!(j <= 1.0 + 1e-12);
        // …and strictly lowers it when `a` has any mass at all.
        if a.values().any(|&v| v > 0.0) {
            prop_assert!(j < 1.0);
        }
    }

    #[test]
    fn min_pairwise_is_a_lower_bound(maps in proptest::collection::vec(map_strategy(), 2..5)) {
        let min = min_pairwise_jaccard(&maps);
        for i in 0..maps.len() {
            for j in (i + 1)..maps.len() {
                prop_assert!(jaccard(&maps[i], &maps[j]) >= min - 1e-12);
            }
        }
    }

    #[test]
    fn total_variation_is_a_metric_ish(a in map_strategy(), b in map_strategy()) {
        let tv = total_variation(&a, &b);
        prop_assert!(tv >= 0.0);
        prop_assert!((total_variation(&a, &a)).abs() < 1e-12);
        prop_assert!((tv - total_variation(&b, &a)).abs() < 1e-12);
    }
}
