//! The metric tree (Fig. 1 of the paper).
//!
//! Severities are stored *exclusively* per metric: a metric's inclusive
//! value is the sum over its subtree, Cube-style. `time` therefore has
//! exclusive severity zero — every measured nanosecond (or counter tick)
//! is classified into one of its leaves.

/// All metrics of the analysis. Order defines storage layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Metric {
    /// Total time (root; exclusive severity always zero).
    Time = 0,
    /// Useful computation in user code and OpenMP loop bodies.
    Comp = 1,
    /// MPI calls (exclusive: library time outside any wait pattern).
    Mpi = 2,
    /// Point-to-point communication (exclusive: non-wait p2p time).
    MpiP2p = 3,
    /// Receiver waiting for a late message.
    LateSender = 4,
    /// Sender waiting for a late receiver (rendezvous).
    LateReceiver = 5,
    /// Collective communication (exclusive: data movement).
    MpiCollective = 6,
    /// Waiting in MPI N×N collectives.
    WaitNxN = 7,
    /// OpenMP runtime (exclusive: misc runtime time).
    Omp = 8,
    /// Starting and ending parallel regions.
    OmpManagement = 9,
    /// Thread synchronisation (exclusive: zero, parent of the two below).
    OmpSync = 10,
    /// Waiting in OpenMP barriers (imbalanced arrival).
    OmpBarrierWait = 11,
    /// Barrier algorithm overhead after the last arrival.
    OmpBarrierOverhead = 12,
    /// Idle worker threads outside parallel regions.
    IdleThreads = 13,
    /// Delay costs: root causes of N×N collective wait time.
    DelayN2n = 14,
    /// Delay costs: root causes of late-sender wait time.
    DelayP2p = 15,
    /// Delay costs: root causes of OpenMP barrier wait time.
    DelayBarrier = 16,
    /// Number of visits (event count) — diagnostic.
    Visits = 17,
}

/// Number of metrics (storage dimension).
pub const N_METRICS: usize = 18;

impl Metric {
    /// All metrics in storage order.
    pub const ALL: [Metric; N_METRICS] = [
        Metric::Time,
        Metric::Comp,
        Metric::Mpi,
        Metric::MpiP2p,
        Metric::LateSender,
        Metric::LateReceiver,
        Metric::MpiCollective,
        Metric::WaitNxN,
        Metric::Omp,
        Metric::OmpManagement,
        Metric::OmpSync,
        Metric::OmpBarrierWait,
        Metric::OmpBarrierOverhead,
        Metric::IdleThreads,
        Metric::DelayN2n,
        Metric::DelayP2p,
        Metric::DelayBarrier,
        Metric::Visits,
    ];

    /// Parent in the metric tree (None for roots).
    pub fn parent(self) -> Option<Metric> {
        Some(match self {
            Metric::Time
            | Metric::DelayN2n
            | Metric::DelayP2p
            | Metric::DelayBarrier
            | Metric::Visits => return None,
            Metric::Comp | Metric::Mpi | Metric::Omp | Metric::IdleThreads => Metric::Time,
            Metric::MpiP2p | Metric::MpiCollective => Metric::Mpi,
            Metric::LateSender | Metric::LateReceiver => Metric::MpiP2p,
            Metric::WaitNxN => Metric::MpiCollective,
            Metric::OmpManagement | Metric::OmpSync => Metric::Omp,
            Metric::OmpBarrierWait | Metric::OmpBarrierOverhead => Metric::OmpSync,
        })
    }

    /// Children in the metric tree.
    pub fn children(self) -> &'static [Metric] {
        match self {
            Metric::Time => &[Metric::Comp, Metric::Mpi, Metric::Omp, Metric::IdleThreads],
            Metric::Mpi => &[Metric::MpiP2p, Metric::MpiCollective],
            Metric::MpiP2p => &[Metric::LateSender, Metric::LateReceiver],
            Metric::MpiCollective => &[Metric::WaitNxN],
            Metric::Omp => &[Metric::OmpManagement, Metric::OmpSync],
            Metric::OmpSync => &[Metric::OmpBarrierWait, Metric::OmpBarrierOverhead],
            _ => &[],
        }
    }

    /// This metric and every descendant.
    pub fn subtree(self) -> Vec<Metric> {
        let mut out = vec![self];
        let mut i = 0;
        while i < out.len() {
            out.extend_from_slice(out[i].children());
            i += 1;
        }
        out
    }

    /// True if `self` lies in the `time` hierarchy (counted toward the
    /// total the %_T normalisation divides by).
    pub fn is_time_metric(self) -> bool {
        let mut m = self;
        loop {
            if m == Metric::Time {
                return true;
            }
            match m.parent() {
                Some(p) => m = p,
                None => return false,
            }
        }
    }

    /// Display name (matching the paper's Fig. 1 where applicable).
    pub fn name(self) -> &'static str {
        match self {
            Metric::Time => "time",
            Metric::Comp => "comp",
            Metric::Mpi => "mpi",
            Metric::MpiP2p => "p2p",
            Metric::LateSender => "latesender",
            Metric::LateReceiver => "latereceiver",
            Metric::MpiCollective => "collective",
            Metric::WaitNxN => "wait_nxn",
            Metric::Omp => "omp",
            Metric::OmpManagement => "management",
            Metric::OmpSync => "synchronization",
            Metric::OmpBarrierWait => "barrier_wait",
            Metric::OmpBarrierOverhead => "barrier_overhead",
            Metric::IdleThreads => "idle_threads",
            Metric::DelayN2n => "delay_mpi_collective_n2n",
            Metric::DelayP2p => "delay_mpi_latesender",
            Metric::DelayBarrier => "delay_omp_barrier",
            Metric::Visits => "visits",
        }
    }

    /// Storage index.
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_every_metric_once() {
        assert_eq!(Metric::ALL.len(), N_METRICS);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn parent_child_consistency() {
        for m in Metric::ALL {
            for &c in m.children() {
                assert_eq!(c.parent(), Some(m), "{c:?} must point back to {m:?}");
            }
            if let Some(p) = m.parent() {
                assert!(p.children().contains(&m), "{p:?} must list {m:?}");
            }
        }
    }

    #[test]
    fn time_subtree_covers_the_hierarchy() {
        let sub = Metric::Time.subtree();
        assert!(sub.contains(&Metric::LateSender));
        assert!(sub.contains(&Metric::OmpBarrierOverhead));
        assert!(sub.contains(&Metric::IdleThreads));
        assert!(!sub.contains(&Metric::DelayN2n));
        assert!(!sub.contains(&Metric::Visits));
        assert_eq!(sub.len(), 14);
    }

    #[test]
    fn time_metric_predicate() {
        assert!(Metric::WaitNxN.is_time_metric());
        assert!(Metric::Time.is_time_metric());
        assert!(!Metric::DelayN2n.is_time_metric());
        assert!(!Metric::Visits.is_time_metric());
    }
}
