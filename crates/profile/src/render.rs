//! Text rendering of profiles — the terminal stand-in for the Cube
//! browser's metric/call-path views.

use crate::cube::Profile;
use crate::metric::Metric;
use std::fmt::Write;

/// Render the metric tree with inclusive `%_T` values ("Own root
/// percent" view in Cube). Metrics below `min_pct` are skipped.
pub fn metric_table(profile: &Profile, min_pct: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "metric view ({} clock), values in %_T", profile.clock_name);
    fn rec(p: &Profile, m: Metric, depth: usize, min_pct: f64, out: &mut String) {
        let pct = p.pct_t(m);
        if pct >= min_pct || m == Metric::Time {
            let _ =
                writeln!(out, "{:indent$}{:<22} {:>7.2}", "", m.name(), pct, indent = depth * 2);
        }
        for &c in m.children() {
            rec(p, c, depth + 1, min_pct, out);
        }
    }
    rec(profile, Metric::Time, 0, min_pct, &mut out);
    out
}

/// Render the call paths contributing to `metric` ("Metric selection
/// percent" view), sorted descending, skipping entries below `min_pct`.
pub fn callpath_table(profile: &Profile, metric: Metric, min_pct: f64) -> String {
    let mut rows: Vec<(f64, String)> = profile
        .map_c(metric)
        .into_iter()
        .filter(|(_, v)| *v >= min_pct)
        .map(|(c, v)| (v, profile.path_string(c)))
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut out = String::new();
    let _ = writeln!(out, "call paths for metric `{}`, values in %_M", metric.name());
    for (v, path) in rows {
        let _ = writeln!(out, "  {v:>7.2}  {path}");
    }
    out
}

/// One-line summary of the paradigm split (the Fig. 7 / Fig. 8 bars).
pub fn paradigm_summary(profile: &Profile) -> String {
    format!(
        "{}: comp {:.1}%_T  mpi {:.1}%_T  omp {:.1}%_T  idle {:.1}%_T",
        profile.clock_name,
        profile.pct_t(Metric::Comp),
        profile.pct_t(Metric::Mpi),
        profile.pct_t(Metric::Omp),
        profile.pct_t(Metric::IdleThreads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calltree::CallTree;
    use nrlt_trace::{LocationDef, RegionDef, RegionRef, RegionRole};

    fn mk() -> Profile {
        let regions = vec![
            RegionDef { name: "main".into(), role: RegionRole::Function },
            RegionDef { name: "kernel".into(), role: RegionRole::Function },
        ];
        let mut ct = CallTree::new();
        let root = ct.intern(None, RegionRef(0));
        let k = ct.intern(Some(root), RegionRef(1));
        let locations = vec![LocationDef { rank: 0, thread: 0, core: 0 }];
        let mut p = Profile::new("tsc".into(), regions, ct, locations);
        p.add(Metric::Comp, k, 0, 80.0);
        p.add(Metric::WaitNxN, root, 0, 20.0);
        p
    }

    #[test]
    fn metric_table_contains_values() {
        let s = metric_table(&mk(), 0.1);
        assert!(s.contains("time"), "{s}");
        assert!(s.contains("comp"), "{s}");
        assert!(s.contains("80.00"), "{s}");
        assert!(s.contains("wait_nxn"), "{s}");
    }

    #[test]
    fn callpath_table_sorted() {
        let s = callpath_table(&mk(), Metric::Comp, 0.0);
        assert!(s.contains("main/kernel"), "{s}");
        assert!(s.contains("100.00"), "{s}");
    }

    #[test]
    fn paradigm_summary_mentions_everything() {
        let s = paradigm_summary(&mk());
        assert!(s.contains("comp 80.0"), "{s}");
        assert!(s.contains("mpi 20.0"), "{s}");
    }
}
