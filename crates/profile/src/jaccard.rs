//! Generalized Jaccard similarity (Section V-B).
//!
//! Costa's generalization of the Jaccard index to non-negative functions:
//! `J(A, B) = Σ min(A(x), B(x)) / Σ max(A(x), B(x))`. The paper uses it
//! to quantify how similar two profiles are — either a logical
//! measurement against `tsc`, or repetitions of the same measurement
//! against each other (run-to-run stability).

use std::collections::{BTreeMap, BTreeSet};

/// Generalized Jaccard score of two non-negative mappings. Missing keys
/// count as zero. Two empty (or all-zero) mappings score 1.
///
/// The mappings are ordered (`BTreeMap`) so the floating-point
/// accumulation below visits keys in one fixed order — scores never
/// depend on hash-seed or thread-of-origin iteration order.
pub fn jaccard<K: Ord + Clone>(a: &BTreeMap<K, f64>, b: &BTreeMap<K, f64>) -> f64 {
    let mut intersection = 0.0;
    let mut union = 0.0;
    for (k, &va) in a {
        debug_assert!(va >= 0.0, "jaccard inputs must be non-negative");
        let vb = b.get(k).copied().unwrap_or(0.0);
        intersection += va.min(vb);
        union += va.max(vb);
    }
    for (k, &vb) in b {
        debug_assert!(vb >= 0.0, "jaccard inputs must be non-negative");
        if !a.contains_key(k) {
            union += vb;
        }
    }
    if union == 0.0 {
        1.0
    } else {
        intersection / union
    }
}

/// Minimum pairwise Jaccard score over a set of mappings — the paper's
/// run-to-run stability measure (lines/circles in Figs. 3 and 4).
/// Returns 1 for fewer than two mappings.
pub fn min_pairwise_jaccard<K: Ord + Clone>(maps: &[BTreeMap<K, f64>]) -> f64 {
    let mut min = 1.0f64;
    for i in 0..maps.len() {
        for j in (i + 1)..maps.len() {
            min = min.min(jaccard(&maps[i], &maps[j]));
        }
    }
    min
}

/// Weighted mean absolute difference between two mappings (diagnostic
/// complement to the Jaccard score).
pub fn total_variation<K: Ord + Clone>(a: &BTreeMap<K, f64>, b: &BTreeMap<K, f64>) -> f64 {
    let keys: BTreeSet<&K> = a.keys().chain(b.keys()).collect();
    keys.into_iter()
        .map(|k| (a.get(k).copied().unwrap_or(0.0) - b.get(k).copied().unwrap_or(0.0)).abs())
        .sum::<f64>()
        / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn identical_maps_score_one() {
        let a = map(&[("x", 1.0), ("y", 2.0)]);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_maps_score_zero() {
        let a = map(&[("x", 1.0)]);
        let b = map(&[("y", 1.0)]);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn empty_maps_score_one() {
        let e: BTreeMap<String, f64> = BTreeMap::new();
        assert_eq!(jaccard(&e, &e), 1.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let a = map(&[("x", 2.0), ("y", 1.0)]);
        let b = map(&[("x", 1.0), ("y", 2.0)]);
        // min sum = 2, max sum = 4.
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = map(&[("x", 3.0), ("z", 0.5)]);
        let b = map(&[("x", 1.0), ("y", 2.0)]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    #[test]
    fn scale_invariance_of_identical_shapes() {
        // Jaccard is NOT scale invariant in general, but doubling both
        // maps together preserves the score.
        let a = map(&[("x", 2.0), ("y", 1.0)]);
        let b = map(&[("x", 1.0), ("y", 2.0)]);
        let a2 = map(&[("x", 4.0), ("y", 2.0)]);
        let b2 = map(&[("x", 2.0), ("y", 4.0)]);
        assert!((jaccard(&a, &b) - jaccard(&a2, &b2)).abs() < 1e-12);
    }

    #[test]
    fn min_pairwise_of_repetitions() {
        let a = map(&[("x", 1.0)]);
        let b = map(&[("x", 1.0)]);
        let c = map(&[("x", 2.0)]);
        assert_eq!(min_pairwise_jaccard(&[a.clone(), b.clone()]), 1.0);
        let m = min_pairwise_jaccard(&[a, b, c]);
        assert!((m - 0.5).abs() < 1e-12);
        let empty: Vec<BTreeMap<String, f64>> = vec![];
        assert_eq!(min_pairwise_jaccard(&empty), 1.0);
    }

    #[test]
    fn total_variation_basic() {
        let a = map(&[("x", 60.0), ("y", 40.0)]);
        let b = map(&[("x", 40.0), ("y", 60.0)]);
        assert!((total_variation(&a, &b) - 20.0).abs() < 1e-12);
        assert_eq!(total_variation(&a, &a), 0.0);
    }
}
