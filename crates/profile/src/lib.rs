//! # nrlt-profile — the Cube analog
//!
//! Profiles over the three Scalasca dimensions — metric tree, call-path
//! tree, system (locations) — with exclusive storage and inclusive
//! views, the `%_T` / `%_M` normalisations the paper's analysis reads
//! off the Cube browser, aggregation over repetitions, the generalized
//! Jaccard score used in Section V-B, and plain-text rendering.

#![warn(missing_docs)]

pub mod calltree;
pub mod cube;
pub mod export;
pub mod jaccard;
pub mod metric;
pub mod render;
pub mod system;

pub use calltree::{CallPathId, CallTree};
pub use cube::Profile;
pub use export::{map_mc_csv, to_csv};
pub use jaccard::{jaccard, min_pairwise_jaccard, total_variation};
pub use metric::{Metric, N_METRICS};
pub use render::{callpath_table, metric_table, paradigm_summary};
pub use system::{location_spread, per_rank, system_table, LocationSpread};
