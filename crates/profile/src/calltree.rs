//! Call-path tree: the second profile dimension.
//!
//! Call paths are interned as (parent, region) pairs, rooted at each
//! program's entry region. Because all measurements of one benchmark
//! share the region table and program structure, call-path ids are
//! comparable across clock modes and repetitions — which is what lets
//! the Jaccard score compare (metric, call path) mappings directly.

use nrlt_trace::RegionRef;
use std::collections::HashMap;

/// Interned call-path handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallPathId(pub u32);

#[derive(Debug, Clone, PartialEq)]
struct Node {
    parent: Option<CallPathId>,
    region: RegionRef,
    children: Vec<CallPathId>,
    depth: u32,
}

/// The call-path tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CallTree {
    nodes: Vec<Node>,
    index: HashMap<(Option<CallPathId>, RegionRef), CallPathId>,
}

impl CallTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern the child `region` of `parent` (or a root when None).
    pub fn intern(&mut self, parent: Option<CallPathId>, region: RegionRef) -> CallPathId {
        if let Some(&id) = self.index.get(&(parent, region)) {
            return id;
        }
        let id = CallPathId(self.nodes.len() as u32);
        let depth = parent.map_or(0, |p| self.nodes[p.0 as usize].depth + 1);
        self.nodes.push(Node { parent, region, children: Vec::new(), depth });
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        self.index.insert((parent, region), id);
        id
    }

    /// Number of call paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no paths are interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Parent of a call path.
    pub fn parent(&self, id: CallPathId) -> Option<CallPathId> {
        self.nodes[id.0 as usize].parent
    }

    /// Region at the end of the path.
    pub fn region(&self, id: CallPathId) -> RegionRef {
        self.nodes[id.0 as usize].region
    }

    /// Children of a call path.
    pub fn children(&self, id: CallPathId) -> &[CallPathId] {
        &self.nodes[id.0 as usize].children
    }

    /// Depth (roots are 0).
    pub fn depth(&self, id: CallPathId) -> u32 {
        self.nodes[id.0 as usize].depth
    }

    /// Iterate all ids in interning order.
    pub fn iter(&self) -> impl Iterator<Item = CallPathId> {
        (0..self.nodes.len() as u32).map(CallPathId)
    }

    /// Render a path as `a/b/c` using a region-name lookup.
    pub fn path_string(&self, id: CallPathId, region_name: impl Fn(RegionRef) -> String) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            parts.push(region_name(self.nodes[c.0 as usize].region));
            cur = self.nodes[c.0 as usize].parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Find the call path whose rendered string equals `path` (slow;
    /// for tests and report lookups).
    pub fn find_by_string(
        &self,
        path: &str,
        region_name: impl Fn(RegionRef) -> String + Copy,
    ) -> Option<CallPathId> {
        self.iter().find(|&id| self.path_string(id, region_name) == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(r: RegionRef) -> String {
        format!("r{}", r.0)
    }

    #[test]
    fn intern_is_idempotent_per_parent() {
        let mut t = CallTree::new();
        let root = t.intern(None, RegionRef(0));
        let a = t.intern(Some(root), RegionRef(1));
        let a2 = t.intern(Some(root), RegionRef(1));
        assert_eq!(a, a2);
        assert_eq!(t.len(), 2);
        // Same region under a different parent is a different path.
        let b = t.intern(Some(a), RegionRef(1));
        assert_ne!(a, b);
        assert_eq!(t.depth(b), 2);
    }

    #[test]
    fn path_strings() {
        let mut t = CallTree::new();
        let root = t.intern(None, RegionRef(0));
        let a = t.intern(Some(root), RegionRef(1));
        let b = t.intern(Some(a), RegionRef(2));
        assert_eq!(t.path_string(b, names), "r0/r1/r2");
        assert_eq!(t.find_by_string("r0/r1", names), Some(a));
        assert_eq!(t.find_by_string("r9", names), None);
    }

    #[test]
    fn children_are_tracked() {
        let mut t = CallTree::new();
        let root = t.intern(None, RegionRef(0));
        let a = t.intern(Some(root), RegionRef(1));
        let b = t.intern(Some(root), RegionRef(2));
        assert_eq!(t.children(root), &[a, b]);
        assert_eq!(t.parent(a), Some(root));
        assert_eq!(t.parent(root), None);
    }
}
