//! The profile cube: severity values over (metric, call path, location).
//!
//! The Cube analog. Severities are stored exclusively in both the metric
//! and call-path dimensions; inclusive views aggregate over subtrees.
//! Values are in the trace's own unit (virtual nanoseconds or logical
//! ticks) — the normalised views (`%_T`, `%_M`) divide them away, which
//! is how the paper compares measurements taken with different clocks.

use crate::calltree::{CallPathId, CallTree};
use crate::metric::Metric;
use nrlt_trace::{LocationDef, RegionDef, RegionRef};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A measurement profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Clock that produced the underlying trace (`tsc`, `lt_bb`, …).
    pub clock_name: String,
    /// Region definitions (names for call-path rendering), shared with
    /// the trace that produced the profile (and its sibling repetitions).
    pub regions: Arc<Vec<RegionDef>>,
    /// The call-path tree.
    pub call_tree: CallTree,
    /// Location definitions, shared like [`Profile::regions`].
    pub locations: Arc<Vec<LocationDef>>,
    /// Exclusive severities: `(metric, call path) → per-location values`.
    /// Ordered so sums over cells accumulate in one fixed order.
    sev: BTreeMap<(Metric, CallPathId), Vec<f64>>,
}

impl Profile {
    /// Empty profile over the given definition tables.
    pub fn new(
        clock_name: String,
        regions: impl Into<Arc<Vec<RegionDef>>>,
        call_tree: CallTree,
        locations: impl Into<Arc<Vec<LocationDef>>>,
    ) -> Self {
        Profile {
            clock_name,
            regions: regions.into(),
            call_tree,
            locations: locations.into(),
            sev: BTreeMap::new(),
        }
    }

    /// Number of locations.
    pub fn n_locations(&self) -> usize {
        self.locations.len()
    }

    /// Add `value` to the exclusive severity of `(metric, path, location)`.
    pub fn add(&mut self, metric: Metric, path: CallPathId, location: usize, value: f64) {
        debug_assert!(value >= 0.0, "severities are non-negative ({metric:?}: {value})");
        debug_assert!(location < self.locations.len());
        let cell =
            self.sev.entry((metric, path)).or_insert_with(|| vec![0.0; self.locations.len()]);
        cell[location] += value;
    }

    /// Exclusive severity of one cell.
    pub fn get(&self, metric: Metric, path: CallPathId, location: usize) -> f64 {
        self.sev.get(&(metric, path)).map_or(0.0, |v| v[location])
    }

    /// Exclusive severity summed over locations.
    pub fn excl(&self, metric: Metric, path: CallPathId) -> f64 {
        self.sev.get(&(metric, path)).map_or(0.0, |v| v.iter().sum())
    }

    /// Exclusive severity of a metric summed over call paths and
    /// locations.
    pub fn metric_excl_total(&self, metric: Metric) -> f64 {
        self.sev.iter().filter(|((m, _), _)| *m == metric).map(|(_, v)| v.iter().sum::<f64>()).sum()
    }

    /// Inclusive severity of a metric (its whole subtree), summed over
    /// call paths and locations. This is the number behind "`5 %_T` in
    /// MPI".
    pub fn metric_incl_total(&self, metric: Metric) -> f64 {
        metric.subtree().into_iter().map(|m| self.metric_excl_total(m)).sum()
    }

    /// Total reported effort: inclusive `time`.
    pub fn total_time(&self) -> f64 {
        self.metric_incl_total(Metric::Time)
    }

    /// A metric's inclusive total as a percentage of total time (`%_T`).
    pub fn pct_t(&self, metric: Metric) -> f64 {
        let total = self.total_time();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.metric_incl_total(metric) / total
        }
    }

    /// Inclusive severity of `metric` at `path` including the call-path
    /// subtree, summed over locations.
    pub fn incl_at(&self, metric: Metric, path: CallPathId) -> f64 {
        let mut total = 0.0;
        let mut stack = vec![path];
        while let Some(p) = stack.pop() {
            for m in metric.subtree() {
                total += self.excl(m, p);
            }
            stack.extend_from_slice(self.call_tree.children(p));
        }
        total
    }

    /// The `(metric, call path) → %_T` mapping over the time hierarchy,
    /// used for the paper's J_(M,C) score. Exclusive in both dimensions;
    /// zero cells are omitted.
    pub fn map_mc(&self) -> BTreeMap<(Metric, CallPathId), f64> {
        let total = self.total_time();
        if total == 0.0 {
            return BTreeMap::new();
        }
        let mut out = BTreeMap::new();
        for (&(m, c), v) in &self.sev {
            if !m.is_time_metric() {
                continue;
            }
            let s: f64 = v.iter().sum();
            if s > 0.0 {
                out.insert((m, c), 100.0 * s / total);
            }
        }
        out
    }

    /// The `call path → %_M` mapping for one metric (inclusive over the
    /// metric subtree, exclusive per call path), used for the paper's
    /// J_C^metric score and the stacked-bar figures.
    pub fn map_c(&self, metric: Metric) -> BTreeMap<CallPathId, f64> {
        let mut raw: BTreeMap<CallPathId, f64> = BTreeMap::new();
        for m in metric.subtree() {
            for (&(mm, c), v) in &self.sev {
                if mm == m {
                    let s: f64 = v.iter().sum();
                    if s > 0.0 {
                        *raw.entry(c).or_insert(0.0) += s;
                    }
                }
            }
        }
        let total: f64 = raw.values().sum();
        if total == 0.0 {
            return BTreeMap::new();
        }
        raw.into_iter().map(|(c, v)| (c, 100.0 * v / total)).collect()
    }

    /// `%_M` of one call path for a metric.
    pub fn pct_m(&self, metric: Metric, path: CallPathId) -> f64 {
        self.map_c(metric).get(&path).copied().unwrap_or(0.0)
    }

    /// Sum a metric (inclusive) over one location.
    pub fn metric_at_location(&self, metric: Metric, location: usize) -> f64 {
        metric
            .subtree()
            .into_iter()
            .map(|m| {
                self.sev
                    .iter()
                    .filter(|((mm, _), _)| *mm == m)
                    .map(|(_, v)| v[location])
                    .sum::<f64>()
            })
            .sum()
    }

    /// Render a call-path id as `a/b/c`.
    pub fn path_string(&self, path: CallPathId) -> String {
        let regions = &self.regions;
        self.call_tree.path_string(path, |r: RegionRef| regions[r.0 as usize].name.clone())
    }

    /// Find a call path by rendered string.
    pub fn find_path(&self, s: &str) -> Option<CallPathId> {
        let regions = &self.regions;
        self.call_tree.find_by_string(s, |r: RegionRef| regions[r.0 as usize].name.clone())
    }

    /// Find the first call path ending in a region with the given name.
    pub fn find_path_by_region(&self, region_name: &str) -> Option<CallPathId> {
        self.call_tree
            .iter()
            .find(|&id| self.regions[self.call_tree.region(id).0 as usize].name == region_name)
    }

    /// Cell-wise arithmetic mean of several same-shape profiles (the
    /// paper averages five repetitions). Panics on shape mismatch.
    pub fn mean(profiles: &[Profile]) -> Profile {
        assert!(!profiles.is_empty(), "mean of zero profiles");
        let first = &profiles[0];
        for p in profiles {
            assert_eq!(p.call_tree.len(), first.call_tree.len(), "call-tree shape mismatch");
            assert_eq!(p.locations.len(), first.locations.len(), "location mismatch");
        }
        let mut out = Profile::new(
            first.clock_name.clone(),
            first.regions.clone(),
            first.call_tree.clone(),
            first.locations.clone(),
        );
        let n = profiles.len() as f64;
        for p in profiles {
            for (&(m, c), v) in &p.sev {
                let cell =
                    out.sev.entry((m, c)).or_insert_with(|| vec![0.0; first.locations.len()]);
                for (o, x) in cell.iter_mut().zip(v) {
                    *o += x / n;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrlt_trace::RegionRole;

    fn mk() -> Profile {
        let regions = vec![
            RegionDef { name: "main".into(), role: RegionRole::Function },
            RegionDef { name: "solve".into(), role: RegionRole::Function },
            RegionDef { name: "MPI_Allreduce".into(), role: RegionRole::MpiApi },
        ];
        let mut ct = CallTree::new();
        let root = ct.intern(None, RegionRef(0));
        let solve = ct.intern(Some(root), RegionRef(1));
        let ar = ct.intern(Some(solve), RegionRef(2));
        let locations = vec![
            LocationDef { rank: 0, thread: 0, core: 0 },
            LocationDef { rank: 1, thread: 0, core: 16 },
        ];
        let mut p = Profile::new("tsc".into(), regions, ct, locations);
        p.add(Metric::Comp, root, 0, 10.0);
        p.add(Metric::Comp, solve, 0, 50.0);
        p.add(Metric::Comp, solve, 1, 70.0);
        p.add(Metric::WaitNxN, ar, 0, 30.0);
        p.add(Metric::MpiCollective, ar, 1, 10.0);
        let _ = (root, solve, ar);
        p
    }

    #[test]
    fn totals_and_percentages() {
        let p = mk();
        assert_eq!(p.total_time(), 170.0);
        assert_eq!(p.metric_incl_total(Metric::Comp), 130.0);
        assert_eq!(p.metric_incl_total(Metric::Mpi), 40.0);
        assert_eq!(p.metric_excl_total(Metric::MpiCollective), 10.0);
        assert!((p.pct_t(Metric::Mpi) - 100.0 * 40.0 / 170.0).abs() < 1e-9);
    }

    #[test]
    fn inclusive_at_path_includes_children() {
        let p = mk();
        let root = p.find_path("main").unwrap();
        let solve = p.find_path("main/solve").unwrap();
        assert_eq!(p.incl_at(Metric::Time, root), 170.0);
        assert_eq!(p.incl_at(Metric::Time, solve), 160.0);
        assert_eq!(p.incl_at(Metric::Comp, solve), 120.0);
    }

    #[test]
    fn map_mc_normalises_to_pct_t() {
        let p = mk();
        let mc = p.map_mc();
        let total: f64 = mc.values().sum();
        assert!((total - 100.0).abs() < 1e-9, "exclusive cells must cover 100%: {total}");
    }

    #[test]
    fn map_c_normalises_per_metric() {
        let p = mk();
        let c = p.map_c(Metric::Comp);
        let total: f64 = c.values().sum();
        assert!((total - 100.0).abs() < 1e-9);
        let solve = p.find_path("main/solve").unwrap();
        assert!((c[&solve] - 100.0 * 120.0 / 130.0).abs() < 1e-9);
    }

    #[test]
    fn per_location_view() {
        let p = mk();
        assert_eq!(p.metric_at_location(Metric::Time, 0), 90.0);
        assert_eq!(p.metric_at_location(Metric::Time, 1), 80.0);
    }

    #[test]
    fn mean_averages_cells() {
        let a = mk();
        let mut b = mk();
        let solve = b.find_path("main/solve").unwrap();
        b.add(Metric::Comp, solve, 0, 100.0);
        let m = Profile::mean(&[a.clone(), b]);
        let solve = m.find_path("main/solve").unwrap();
        assert!((m.get(Metric::Comp, solve, 0) - 100.0).abs() < 1e-9); // (50+150)/2
        assert!((m.get(Metric::Comp, solve, 1) - 70.0).abs() < 1e-9);
        let _ = a;
    }

    #[test]
    fn find_by_region_name() {
        let p = mk();
        assert_eq!(p.find_path_by_region("MPI_Allreduce"), p.find_path("main/solve/MPI_Allreduce"));
        assert_eq!(p.find_path_by_region("nope"), None);
    }
}
