//! Profile export: flat CSV of the severity cube, for external plotting
//! or spreadsheet analysis (the role cube_dump plays for Cube files).

use crate::cube::Profile;
use crate::metric::Metric;
use std::fmt::Write;

/// Serialise the non-zero exclusive severities as CSV with header
/// `metric,callpath,rank,thread,value`.
///
/// Rows are sorted (metric index, call path id, location) so exports are
/// byte-stable for identical profiles.
pub fn to_csv(profile: &Profile) -> String {
    let mut rows: Vec<(usize, u32, usize, f64)> = Vec::new();
    for metric in Metric::ALL {
        for path in profile.call_tree.iter() {
            for loc in 0..profile.n_locations() {
                let v = profile.get(metric, path, loc);
                if v != 0.0 {
                    rows.push((metric.index(), path.0, loc, v));
                }
            }
        }
    }
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = String::from("metric,callpath,rank,thread,value\n");
    for (m, c, l, v) in rows {
        let loc = &profile.locations[l];
        let _ = writeln!(
            out,
            "{},\"{}\",{},{},{}",
            Metric::ALL[m].name(),
            profile.path_string(crate::CallPathId(c)),
            loc.rank,
            loc.thread,
            v
        );
    }
    out
}

/// Serialise the `(metric, call path) → %_T` mapping (the Jaccard
/// input) as CSV with header `metric,callpath,pct_t`.
pub fn map_mc_csv(profile: &Profile) -> String {
    let mut rows: Vec<(String, String, f64)> = profile
        .map_mc()
        .into_iter()
        .map(|((m, c), v)| (m.name().to_owned(), profile.path_string(c), v))
        .collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = String::from("metric,callpath,pct_t\n");
    for (m, c, v) in rows {
        let _ = writeln!(out, "{m},\"{c}\",{v:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calltree::CallTree;
    use nrlt_trace::{LocationDef, RegionDef, RegionRef, RegionRole};

    fn profile() -> Profile {
        let regions = vec![
            RegionDef { name: "main".into(), role: RegionRole::Function },
            RegionDef { name: "kern".into(), role: RegionRole::Function },
        ];
        let mut ct = CallTree::new();
        let root = ct.intern(None, RegionRef(0));
        let k = ct.intern(Some(root), RegionRef(1));
        let locations = vec![
            LocationDef { rank: 0, thread: 0, core: 0 },
            LocationDef { rank: 0, thread: 1, core: 1 },
        ];
        let mut p = Profile::new("tsc".into(), regions, ct, locations);
        p.add(Metric::Comp, k, 0, 42.0);
        p.add(Metric::Comp, k, 1, 13.0);
        p.add(Metric::WaitNxN, root, 0, 5.0);
        p
    }

    #[test]
    fn csv_has_all_nonzero_cells() {
        let csv = to_csv(&profile());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,callpath,rank,thread,value");
        assert_eq!(lines.len(), 1 + 3);
        assert!(csv.contains("comp,\"main/kern\",0,0,42"), "{csv}");
        assert!(csv.contains("wait_nxn,\"main\",0,0,5"), "{csv}");
    }

    #[test]
    fn csv_is_byte_stable() {
        assert_eq!(to_csv(&profile()), to_csv(&profile()));
        assert_eq!(map_mc_csv(&profile()), map_mc_csv(&profile()));
    }

    #[test]
    fn map_mc_csv_normalises() {
        let csv = map_mc_csv(&profile());
        // comp cell: 55/60 of total.
        assert!(csv.contains("comp,\"main/kern\",91.666667"), "{csv}");
    }
}
