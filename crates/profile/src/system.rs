//! System-dimension views: the third Cube axis.
//!
//! Scalasca's system tree runs job → node → rank → thread; queries like
//! "how much time does thread 0 spend in foo?" and per-rank imbalance
//! summaries live here.

use crate::cube::Profile;
use crate::metric::Metric;
use std::fmt::Write;

/// Distribution summary of a metric across locations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationSpread {
    /// Smallest per-location inclusive value.
    pub min: f64,
    /// Mean per-location inclusive value.
    pub mean: f64,
    /// Largest per-location inclusive value.
    pub max: f64,
    /// Location index holding the maximum.
    pub argmax: usize,
    /// Imbalance ratio `max / mean` (1 = perfectly balanced; the classic
    /// "percent imbalance" is `(ratio − 1) × 100`).
    pub imbalance: f64,
}

/// Summarise `metric` (inclusive) across all locations.
pub fn location_spread(profile: &Profile, metric: Metric) -> LocationSpread {
    let n = profile.n_locations().max(1);
    let values: Vec<f64> = (0..n).map(|l| profile.metric_at_location(metric, l)).collect();
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let argmax = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mean = values.iter().sum::<f64>() / n as f64;
    LocationSpread { min, mean, max, argmax, imbalance: if mean > 0.0 { max / mean } else { 1.0 } }
}

/// Per-rank inclusive totals of a metric (summed over the rank's
/// threads).
pub fn per_rank(profile: &Profile, metric: Metric) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    for (i, loc) in profile.locations.iter().enumerate() {
        let rank = loc.rank as usize;
        if out.len() <= rank {
            out.resize(rank + 1, 0.0);
        }
        out[rank] += profile.metric_at_location(metric, i);
    }
    out
}

/// Render the per-rank distribution of the main metrics as a table —
/// the textual system-tree view.
pub fn system_table(profile: &Profile, metrics: &[Metric]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<6}", "rank");
    for m in metrics {
        let _ = write!(out, " {:>14}", m.name());
    }
    let _ = writeln!(out);
    let columns: Vec<Vec<f64>> = metrics.iter().map(|&m| per_rank(profile, m)).collect();
    let n_ranks = columns.first().map_or(0, Vec::len);
    for r in 0..n_ranks {
        let _ = write!(out, "{r:<6}");
        for col in &columns {
            let _ = write!(out, " {:>14.3e}", col[r]);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calltree::CallTree;
    use nrlt_trace::{LocationDef, RegionDef, RegionRef, RegionRole};

    fn profile() -> Profile {
        let regions = vec![RegionDef { name: "main".into(), role: RegionRole::Function }];
        let mut ct = CallTree::new();
        let root = ct.intern(None, RegionRef(0));
        let locations = vec![
            LocationDef { rank: 0, thread: 0, core: 0 },
            LocationDef { rank: 0, thread: 1, core: 1 },
            LocationDef { rank: 1, thread: 0, core: 16 },
            LocationDef { rank: 1, thread: 1, core: 17 },
        ];
        let mut p = Profile::new("tsc".into(), regions, ct, locations);
        p.add(Metric::Comp, root, 0, 10.0);
        p.add(Metric::Comp, root, 1, 20.0);
        p.add(Metric::Comp, root, 2, 30.0);
        p.add(Metric::Comp, root, 3, 60.0);
        p
    }

    #[test]
    fn spread_statistics() {
        let s = location_spread(&profile(), Metric::Comp);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 60.0);
        assert_eq!(s.mean, 30.0);
        assert_eq!(s.argmax, 3);
        assert!((s.imbalance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_rank_sums_threads() {
        let v = per_rank(&profile(), Metric::Comp);
        assert_eq!(v, vec![30.0, 90.0]);
    }

    #[test]
    fn table_renders() {
        let t = system_table(&profile(), &[Metric::Comp, Metric::Time]);
        assert!(t.contains("rank"), "{t}");
        assert!(t.contains("comp"), "{t}");
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn empty_metric_is_balanced() {
        let s = location_spread(&profile(), Metric::WaitNxN);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.mean, 0.0);
    }
}
