//! MiniFE skeleton (Heroux et al., SAND2009-5574).
//!
//! Models the performance structure of a finite-element mini-app: sparse
//! matrix assembly (structure generation, FE assembly, Dirichlet
//! conditions, local-matrix setup with all-to-all exchanges) followed by
//! an unpreconditioned CG solve (matvec + halo exchange, two dot-product
//! allreduces, three vector updates per iteration).
//!
//! The paper's imbalance option is reproduced: at 50 % imbalance, half
//! the ranks hold three times as many elements as the other half.

use crate::common::BenchmarkInstance;
use nrlt_prog::{Cost, IterCost, ProgramBuilder, Schedule};
use nrlt_sim::JobLayout;

/// MiniFE run parameters.
#[derive(Debug, Clone)]
pub struct MiniFeConfig {
    /// Cube dimension: the grid has `nx³` elements in total.
    pub nx: u64,
    /// MPI ranks.
    pub ranks: u32,
    /// OpenMP threads per rank.
    pub threads_per_rank: u32,
    /// Imbalance percentage: 50 means half the ranks get 3× the
    /// elements of the other half (the paper's definition).
    pub imbalance_pct: u32,
    /// CG iterations.
    pub cg_iters: u32,
    /// Cost constants.
    pub costs: MiniFeCosts,
}

/// Per-element cost constants (calibration knobs).
#[derive(Debug, Clone)]
pub struct MiniFeCosts {
    /// Instructions per element in `generate_matrix_structure` (slow,
    /// call-dense, single-threaded).
    pub structure_instr: u64,
    /// Elements per `operator()` call in the structure-generation burst.
    pub structure_calls_per_elem: f64,
    /// Instructions per element in FE assembly (OpenMP).
    pub assembly_instr: u64,
    /// Bytes per element in FE assembly.
    pub assembly_bytes: u64,
    /// Instructions per element in `impose_dirichlet`.
    pub dirichlet_instr: u64,
    /// Instructions per element in `make_local_matrix` (single-threaded).
    pub make_local_instr: u64,
    /// Instructions per matrix row per CG matvec (27-point stencil).
    pub matvec_instr_per_row: u64,
    /// Bytes per matrix row per CG matvec.
    pub matvec_bytes_per_row: u64,
    /// Instructions per row per dot product.
    pub dot_instr_per_row: u64,
    /// Bytes per row per dot product.
    pub dot_bytes_per_row: u64,
    /// Instructions per row per waxpby.
    pub waxpby_instr_per_row: u64,
    /// Bytes per row per waxpby.
    pub waxpby_bytes_per_row: u64,
}

impl Default for MiniFeCosts {
    fn default() -> Self {
        MiniFeCosts {
            structure_instr: 2000,
            structure_calls_per_elem: 0.5,
            assembly_instr: 9400,
            assembly_bytes: 8000,
            dirichlet_instr: 300,
            make_local_instr: 2450,
            matvec_instr_per_row: 44,
            matvec_bytes_per_row: 290,
            dot_instr_per_row: 4,
            dot_bytes_per_row: 20,
            waxpby_instr_per_row: 16,
            waxpby_bytes_per_row: 110,
        }
    }
}

impl MiniFeConfig {
    /// Elements owned by `rank` under the imbalance rule.
    pub fn elements_of(&self, rank: u32) -> u64 {
        let total = self.nx * self.nx * self.nx;
        if self.imbalance_pct == 0 {
            return total / self.ranks as u64;
        }
        // At 50 %: half the ranks get 3x units, half get 1x; scale the
        // heavy share linearly with the percentage.
        let heavy_ranks = self.ranks / 2;
        let light_ranks = self.ranks - heavy_ranks;
        let heavy_weight = 1.0 + 2.0 * self.imbalance_pct as f64 / 50.0;
        let unit = total as f64 / (heavy_ranks as f64 * heavy_weight + light_ranks as f64);
        if rank < heavy_ranks {
            (unit * heavy_weight) as u64
        } else {
            unit as u64
        }
    }

    /// Build the rank programs.
    pub fn build(&self) -> BenchmarkInstance {
        let c = &self.costs;
        let mut pb = ProgramBuilder::new(self.ranks);
        for rank in 0..self.ranks {
            let elems = self.elements_of(rank);
            let rows = elems; // one row per element, near enough
            let ws_matrix = rows * c.matvec_bytes_per_row;
            let ws_vec = rows * 24; // three vector streams resident
            let left = (rank + self.ranks - 1) % self.ranks;
            let right = (rank + 1) % self.ranks;
            let halo_bytes = (self.nx * self.nx * 8 / self.ranks as u64).max(1024);

            let mut rb = pb.rank(rank);
            let ph_total = rb.phase("total");
            let ph_init = rb.phase("init");
            let ph_structgen = rb.phase("structure_gen");
            let ph_solve = rb.phase("solve");
            rb.phase_start(ph_total);
            rb.enter("main");

            // ---- init: matrix assembly ---------------------------------
            rb.phase_start(ph_init);
            rb.phase_start(ph_structgen);
            rb.scoped("generate_matrix_structure", |rb| {
                let calls = (elems as f64 * c.structure_calls_per_elem) as u64;
                let instr = elems * c.structure_instr;
                rb.kernel_burst(
                    "generate_matrix_structure/operator()",
                    calls,
                    Cost::scalar(instr)
                        .with_basic_blocks(instr / 4) // branchy map/sort code
                        .with_mem_bytes(elems * 60),
                    elems * 60,
                );
                // Global row offsets.
                rb.allgather(8);
                rb.allreduce(8);
            });
            rb.phase_end(ph_structgen);
            rb.scoped("assemble_FE_matrix", |rb| {
                rb.parallel("assemble", |omp| {
                    omp.for_loop(
                        "assemble_FE_matrix",
                        elems,
                        Schedule::Static,
                        IterCost::Uniform(
                            // Branchy scatter code: dense basic blocks,
                            // so counting cannot be hoisted.
                            Cost::scalar(c.assembly_instr)
                                .with_basic_blocks(c.assembly_instr * 2 / 7)
                                .with_mem_bytes(c.assembly_bytes),
                        ),
                        ws_matrix,
                    );
                });
            });
            rb.scoped("impose_dirichlet", |rb| {
                rb.parallel("dirichlet", |omp| {
                    omp.for_loop(
                        "impose_dirichlet",
                        elems / 10,
                        Schedule::Static,
                        IterCost::Uniform(Cost::scalar(c.dirichlet_instr).with_mem_bytes(48)),
                        ws_vec,
                    );
                });
            });
            rb.scoped("make_local_matrix", |rb| {
                // Single-threaded reindexing with collective exchanges of
                // the boundary structure.
                let ml_instr = elems * c.make_local_instr / 2;
                rb.kernel_burst(
                    "make_local_matrix/find_row",
                    elems / 8,
                    Cost::scalar(ml_instr)
                        .with_basic_blocks(ml_instr / 4)
                        .with_mem_bytes(elems * 30),
                    ws_matrix,
                );
                rb.alltoall(halo_bytes / 4);
                rb.kernel(
                    Cost::scalar(elems * c.make_local_instr / 2)
                        .with_basic_blocks(elems * c.make_local_instr / 8)
                        .with_mem_bytes(elems * 20),
                    ws_matrix,
                );
                rb.allgather(64);
            });
            rb.phase_end(ph_init);

            // ---- solve: CG ---------------------------------------------
            rb.phase_start(ph_solve);
            rb.scoped("cg_solve", |rb| {
                for _iter in 0..self.cg_iters {
                    // Halo exchange for the matvec.
                    rb.scoped("exchange_externals", |rb| {
                        rb.irecv(left, 11, halo_bytes);
                        rb.irecv(right, 12, halo_bytes);
                        rb.isend(right, 11, halo_bytes);
                        rb.isend(left, 12, halo_bytes);
                        rb.waitall();
                    });
                    rb.scoped("matvec", |rb| {
                        rb.parallel("matvec", |omp| {
                            omp.for_loop(
                                "matvec",
                                rows,
                                Schedule::Static,
                                IterCost::Uniform(
                                    Cost::scalar(c.matvec_instr_per_row)
                                        .with_basic_blocks(c.matvec_instr_per_row / 10)
                                        .with_mem_bytes(c.matvec_bytes_per_row),
                                ),
                                ws_matrix,
                            );
                        });
                    });
                    // Two dot products with global reductions.
                    for _ in 0..2 {
                        rb.scoped("dot", |rb| {
                            rb.parallel("dot", |omp| {
                                omp.for_loop(
                                    "dot",
                                    rows,
                                    Schedule::Static,
                                    IterCost::Uniform(
                                        Cost::scalar(c.dot_instr_per_row)
                                            .with_mem_bytes(c.dot_bytes_per_row),
                                    ),
                                    ws_vec,
                                );
                            });
                            rb.allreduce(8);
                        });
                    }
                    // Three vector updates (vectorised: one iteration
                    // covers four rows, so lt_loop counts fewer ticks
                    // here than a scalar loop would).
                    for _ in 0..3 {
                        rb.scoped("waxpby", |rb| {
                            rb.parallel("waxpby", |omp| {
                                omp.for_loop(
                                    "waxpby",
                                    rows / 4,
                                    Schedule::Static,
                                    IterCost::Uniform(
                                        Cost::scalar(c.waxpby_instr_per_row)
                                            .with_basic_blocks(1)
                                            .with_mem_bytes(c.waxpby_bytes_per_row),
                                    ),
                                    ws_vec,
                                );
                            });
                        });
                    }
                }
            });
            rb.phase_end(ph_solve);
            rb.leave();
            rb.phase_end(ph_total);
        }
        // One rank per NUMA domain, as in the paper's configurations: with
        // few threads per rank, block pinning would pile every master
        // onto the first domain.
        let layout = if self.threads_per_rank < 16 {
            JobLayout::spread(self.ranks, self.threads_per_rank)
        } else {
            JobLayout::block(self.ranks, self.threads_per_rank)
        };
        BenchmarkInstance {
            name: format!(
                "MiniFE({}^3, {}r x {}t, imb {}%)",
                self.nx, self.ranks, self.threads_per_rank, self.imbalance_pct
            ),
            program: pb.finish(),
            nodes: 1,
            layout,
            filter_rules: vec![],
        }
        .validated()
    }
}

/// MiniFE-1 (Section IV-C): one node, 8 ranks × 1 thread (one rank per
/// NUMA domain), 400³ elements, 50 % imbalance.
pub fn minife_1() -> BenchmarkInstance {
    let mut b = MiniFeConfig {
        nx: 400,
        ranks: 8,
        threads_per_rank: 1,
        imbalance_pct: 50,
        cg_iters: 150,
        costs: MiniFeCosts::default(),
    }
    .build();
    b.name = "MiniFE-1".into();
    b
}

/// MiniFE-2: as MiniFE-1 with 16 threads per rank (whole node).
pub fn minife_2() -> BenchmarkInstance {
    let mut b = MiniFeConfig {
        nx: 400,
        ranks: 8,
        threads_per_rank: 16,
        imbalance_pct: 50,
        cg_iters: 150,
        costs: MiniFeCosts::default(),
    }
    .build();
    b.name = "MiniFE-2".into();
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_splits_three_to_one() {
        let cfg = MiniFeConfig {
            nx: 40,
            ranks: 8,
            threads_per_rank: 1,
            imbalance_pct: 50,
            cg_iters: 5,
            costs: MiniFeCosts::default(),
        };
        let heavy = cfg.elements_of(0);
        let light = cfg.elements_of(7);
        let ratio = heavy as f64 / light as f64;
        assert!((ratio - 3.0).abs() < 0.01, "50% imbalance means 3x: {ratio}");
        // Totals add up (within rounding).
        let total: u64 = (0..8).map(|r| cfg.elements_of(r)).sum();
        assert!((total as i64 - 64_000).abs() < 16);
    }

    #[test]
    fn no_imbalance_is_even() {
        let cfg = MiniFeConfig {
            nx: 40,
            ranks: 8,
            threads_per_rank: 1,
            imbalance_pct: 0,
            cg_iters: 5,
            costs: MiniFeCosts::default(),
        };
        for r in 0..8 {
            assert_eq!(cfg.elements_of(r), 8000);
        }
    }

    #[test]
    fn named_configs_validate() {
        let b1 = minife_1();
        assert_eq!(b1.name, "MiniFE-1");
        assert_eq!(b1.layout.threads_per_rank, 1);
        let b2 = minife_2();
        assert_eq!(b2.layout.threads_per_rank, 16);
        assert_eq!(b2.program.n_ranks(), 8);
    }

    #[test]
    fn program_has_expected_phases_and_regions() {
        let b = minife_1();
        assert!(b.program.phases.contains(&"init".to_string()));
        assert!(b.program.phases.contains(&"solve".to_string()));
        assert!(b.program.phases.contains(&"structure_gen".to_string()));
        assert!(b.program.regions.find("generate_matrix_structure").is_some());
        assert!(b.program.regions.find("make_local_matrix").is_some());
        assert!(b.program.regions.find("cg_solve").is_some());
    }
}
