//! LULESH skeleton (Karlin et al., LLNL proxy app).
//!
//! Shock-hydrodynamics time stepping on a regular hexahedral grid,
//! decomposed over a cube number of ranks. Each step (Section IV-D):
//!
//! 1. `TimeIncrement` — global dt via `MPI_Allreduce`.
//! 2. `LagrangeNodal` / `CalcForceForNodes` — the bulk of the compute,
//!    plus point-to-point halo exchange of nodal forces.
//! 3. `LagrangeElements` / `ApplyMaterialPropertiesForElems` — many
//!    small OpenMP loops; carries the artificial imbalance option.
//!
//! Ranks communicate exclusively point-to-point with face neighbours
//! (modelled as the six faces of the 3-D decomposition).

use crate::common::{rank_imbalance_factor, BenchmarkInstance};
use nrlt_prog::{Cost, IterCost, ProgramBuilder, Schedule};
use nrlt_sim::JobLayout;

/// LULESH run parameters.
#[derive(Debug, Clone)]
pub struct LuleshConfig {
    /// Ranks; must be a cube (1, 8, 27, 64, …).
    pub ranks: u32,
    /// Threads per rank.
    pub threads_per_rank: u32,
    /// Elements per rank edge (paper: 50 → 50³ per rank).
    pub edge: u64,
    /// Time steps to simulate.
    pub steps: u32,
    /// Artificial imbalance strength (0 = off; paper default on ≈ 0.25).
    pub imbalance: f64,
    /// Spread ranks round-robin over NUMA domains (LULESH-2) instead of
    /// block pinning.
    pub spread_placement: bool,
    /// Nodes to allocate.
    pub nodes: u32,
    /// Cost constants.
    pub costs: LuleshCosts,
}

/// Cost constants (calibration knobs).
#[derive(Debug, Clone)]
pub struct LuleshCosts {
    /// Instructions per element per step in `CalcForceForNodes`.
    pub force_instr: u64,
    /// Bytes per element per step in `CalcForceForNodes`.
    pub force_bytes: u64,
    /// Instructions per element per step in the material update.
    pub material_instr: u64,
    /// Bytes per element per step in the material update.
    pub material_bytes: u64,
    /// Number of small OpenMP loops in the material update per step.
    pub material_loops: u32,
    /// Instructions per element per step in `CalcTimeConstraints`.
    pub constraints_instr: u64,
    /// Instructions per element per step in the nodal position update.
    pub position_instr: u64,
}

impl Default for LuleshCosts {
    fn default() -> Self {
        LuleshCosts {
            force_instr: 950,
            force_bytes: 1800,
            material_instr: 260,
            material_bytes: 64,
            material_loops: 30,
            constraints_instr: 60,
            position_instr: 110,
        }
    }
}

/// Face neighbours of `rank` in a `side³` decomposition.
pub fn face_neighbours(rank: u32, side: u32) -> Vec<u32> {
    let (x, y, z) = (rank % side, (rank / side) % side, rank / (side * side));
    let mut out = Vec::new();
    let idx = |x: u32, y: u32, z: u32| x + y * side + z * side * side;
    if x > 0 {
        out.push(idx(x - 1, y, z));
    }
    if x + 1 < side {
        out.push(idx(x + 1, y, z));
    }
    if y > 0 {
        out.push(idx(x, y - 1, z));
    }
    if y + 1 < side {
        out.push(idx(x, y + 1, z));
    }
    if z > 0 {
        out.push(idx(x, y, z - 1));
    }
    if z + 1 < side {
        out.push(idx(x, y, z + 1));
    }
    out
}

impl LuleshConfig {
    /// Build the rank programs.
    pub fn build(&self) -> BenchmarkInstance {
        let side = (self.ranks as f64).cbrt().round() as u32;
        assert_eq!(side * side * side, self.ranks, "LULESH needs a cube rank count");
        let c = &self.costs;
        let elems = self.edge * self.edge * self.edge;
        let face_bytes = (self.edge + 1) * (self.edge + 1) * 8 * 3;
        let ws = elems * 450; // element + nodal fields
        let mut pb = ProgramBuilder::new(self.ranks);
        for rank in 0..self.ranks {
            let neighbours = face_neighbours(rank, side);
            let imb = rank_imbalance_factor(rank, self.imbalance);
            let mut rb = pb.rank(rank);
            let ph_total = rb.phase("total");
            rb.phase_start(ph_total);
            rb.enter("main");
            for _step in 0..self.steps {
                rb.scoped("TimeIncrement", |rb| {
                    // Serial dt computation on the master: the "serial
                    // sections" behind the paper's idle-thread finding.
                    rb.kernel(
                        Cost::scalar(6_000_000)
                            .with_basic_blocks(6_000_000 / 5)
                            .with_mem_bytes(400_000),
                        1 << 20,
                    );
                    rb.allreduce(8);
                });
                rb.scoped("LagrangeNodal", |rb| {
                    rb.scoped("CalcForceForNodes", |rb| {
                        rb.parallel("CalcForceForNodes", |omp| {
                            // Four streaming sweeps over the mesh; each
                            // implicit barrier collects the memory-timing
                            // spread between threads.
                            for loop_name in [
                                "CalcVolumeForceForElems",
                                "IntegrateStressForElems",
                                "CalcHourglassControlForElems",
                                "SumElemStressesToNodeForces",
                            ] {
                                omp.for_loop(
                                    loop_name,
                                    elems,
                                    Schedule::Static,
                                    IterCost::Uniform(
                                        Cost::scalar(c.force_instr / 4)
                                            .with_basic_blocks(c.force_instr / 48)
                                            .with_mem_bytes(c.force_bytes / 4),
                                    ),
                                    ws,
                                );
                            }
                        });
                        // Halo exchange of nodal forces.
                        for &n in &neighbours {
                            rb.irecv(n, 21, face_bytes);
                        }
                        for &n in &neighbours {
                            rb.isend(n, 21, face_bytes);
                        }
                        rb.waitall();
                    });
                    rb.scoped("CalcPositionAndVelocity", |rb| {
                        rb.parallel("CalcPositionAndVelocity", |omp| {
                            omp.for_loop(
                                "CalcPositionForNodes",
                                elems,
                                Schedule::Static,
                                IterCost::Uniform(
                                    Cost::scalar(c.position_instr).with_mem_bytes(48),
                                ),
                                ws,
                            );
                        });
                    });
                });
                rb.scoped("LagrangeElements", |rb| {
                    rb.scoped("ApplyMaterialPropertiesForElems", |rb| {
                        // Many small OpenMP loops doing little work each —
                        // the OpenMP-overhead hotspot of the paper. The
                        // artificial imbalance scales this rank's cost.
                        let per_loop =
                            ((elems as f64 * imb) as u64 / c.material_loops as u64).max(1);
                        for _ in 0..c.material_loops {
                            rb.parallel("ApplyMaterialPropertiesForElems", |omp| {
                                omp.for_loop(
                                    "EvalEOSForElems",
                                    per_loop,
                                    Schedule::Static,
                                    IterCost::Uniform(
                                        // Branchy EOS evaluation.
                                        Cost::scalar(c.material_instr)
                                            .with_basic_blocks(c.material_instr / 5)
                                            .with_mem_bytes(c.material_bytes),
                                    ),
                                    ws / 4,
                                );
                            });
                        }
                    });
                    rb.scoped("CalcQForElems", |rb| {
                        rb.parallel("CalcQForElems", |omp| {
                            omp.for_loop(
                                "CalcMonotonicQForElems",
                                elems,
                                Schedule::Static,
                                IterCost::Uniform(Cost::scalar(130).with_mem_bytes(56)),
                                ws,
                            );
                        });
                        for &n in &neighbours {
                            rb.irecv(n, 22, face_bytes / 3);
                        }
                        for &n in &neighbours {
                            rb.isend(n, 22, face_bytes / 3);
                        }
                        rb.waitall();
                    });
                });
                rb.scoped("CalcTimeConstraintsForElems", |rb| {
                    rb.parallel("CalcTimeConstraintsForElems", |omp| {
                        omp.for_loop(
                            "CalcCourantConstraintForElems",
                            elems,
                            Schedule::Static,
                            IterCost::Uniform(Cost::scalar(c.constraints_instr).with_mem_bytes(16)),
                            ws,
                        );
                    });
                });
            }
            rb.leave();
            rb.phase_end(ph_total);
        }
        let layout = if self.spread_placement {
            JobLayout::spread(self.ranks, self.threads_per_rank)
        } else {
            JobLayout::block(self.ranks, self.threads_per_rank)
        };
        BenchmarkInstance {
            name: format!(
                "LULESH({}r x {}t, {}^3/rank, imb {})",
                self.ranks, self.threads_per_rank, self.edge, self.imbalance
            ),
            program: pb.finish(),
            nodes: self.nodes,
            layout,
            filter_rules: vec![],
        }
        .validated()
    }
}

/// LULESH-1 (Section IV-D): 64 ranks × 4 threads on two nodes, 50³
/// elements per rank, artificial imbalance enabled.
pub fn lulesh_1() -> BenchmarkInstance {
    let mut b = LuleshConfig {
        ranks: 64,
        threads_per_rank: 4,
        edge: 50,
        steps: 30,
        imbalance: 0.8,
        spread_placement: false,
        nodes: 2,
        costs: LuleshCosts::default(),
    }
    .build();
    b.name = "LULESH-1".into();
    b
}

/// LULESH-2: 27 ranks × 4 threads on one node, imbalance disabled; ranks
/// cannot be distributed evenly over the 8 NUMA domains (3 domains get 4
/// ranks, 5 get 3), so memory-bandwidth contention differs per rank.
pub fn lulesh_2() -> BenchmarkInstance {
    let mut b = LuleshConfig {
        ranks: 27,
        threads_per_rank: 4,
        edge: 50,
        steps: 30,
        imbalance: 0.0,
        spread_placement: true,
        nodes: 1,
        costs: LuleshCosts::default(),
    }
    .build();
    b.name = "LULESH-2".into();
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbours_in_a_4_cube() {
        // Corner rank 0 of a 4x4x4 cube has 3 neighbours.
        assert_eq!(face_neighbours(0, 4).len(), 3);
        // An interior rank has 6.
        let interior = 1 + 4 + 16; // (1,1,1)
        assert_eq!(face_neighbours(interior, 4).len(), 6);
        // Symmetry: if b is a neighbour of a, a is a neighbour of b.
        for a in 0..64 {
            for &b in &face_neighbours(a, 4) {
                assert!(face_neighbours(b, 4).contains(&a), "{a} <-> {b}");
            }
        }
    }

    #[test]
    fn named_configs_validate() {
        let b1 = lulesh_1();
        assert_eq!(b1.name, "LULESH-1");
        assert_eq!(b1.nodes, 2);
        assert_eq!(b1.program.n_ranks(), 64);
        let b2 = lulesh_2();
        assert_eq!(b2.program.n_ranks(), 27);
        assert!(matches!(b2.layout.policy, nrlt_sim::PinPolicy::SpreadNuma));
    }

    #[test]
    #[should_panic(expected = "cube rank count")]
    fn non_cube_rank_count_rejected() {
        LuleshConfig {
            ranks: 10,
            threads_per_rank: 1,
            edge: 10,
            steps: 1,
            imbalance: 0.0,
            spread_placement: false,
            nodes: 1,
            costs: LuleshCosts::default(),
        }
        .build();
    }

    #[test]
    fn imbalance_on_means_uneven_material_costs() {
        // With imbalance, different ranks see different material-loop
        // iteration counts; extract them from the built programs.
        let b = LuleshConfig {
            ranks: 8,
            threads_per_rank: 1,
            edge: 10,
            steps: 1,
            imbalance: 0.5,
            spread_placement: false,
            nodes: 1,
            costs: LuleshCosts::default(),
        }
        .build();
        use nrlt_prog::{Action, OmpAction};
        let iters_of = |rank: usize| -> u64 {
            b.program.ranks[rank]
                .iter()
                .filter_map(|a| match a {
                    Action::Parallel(p) => Some(p.body.iter().filter_map(|o| match o {
                        OmpAction::For(f) => Some(f.iters),
                        _ => None,
                    })),
                    _ => None,
                })
                .flatten()
                .sum()
        };
        let all: Vec<u64> = (0..8).map(iters_of).collect();
        assert_ne!(all.iter().min(), all.iter().max(), "imbalance must vary work: {all:?}");
    }
}
