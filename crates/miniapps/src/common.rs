//! Common benchmark-instance plumbing.

use nrlt_prog::Program;
use nrlt_sim::JobLayout;

/// A named, fully specified benchmark run: the program plus the job shape
/// it is meant to execute under (Section IV of the paper).
#[derive(Debug, Clone)]
pub struct BenchmarkInstance {
    /// Name as used in the paper (e.g. `MiniFE-2`, `TeaLeaf-4`).
    pub name: String,
    /// The rank programs.
    pub program: Program,
    /// Nodes the job allocates.
    pub nodes: u32,
    /// Ranks × threads and pinning.
    pub layout: JobLayout,
    /// Region-name filter rules the paper's rule of thumb would apply
    /// (keep tsc overhead ≈ 5 % where possible).
    pub filter_rules: Vec<String>,
}

impl BenchmarkInstance {
    /// Validate the program, panicking with the full error list on
    /// failure (a mini-app skeleton bug, not a user error).
    pub fn validated(self) -> Self {
        if let Err(errors) = self.program.validate() {
            let msgs: Vec<String> = errors.iter().map(ToString::to_string).collect();
            panic!("{} failed validation:\n  {}", self.name, msgs.join("\n  "));
        }
        self
    }
}

/// Deterministic per-rank imbalance factor in `[1, 1+strength]`, spread
/// quasi-uniformly over ranks (golden-ratio hashing). Used for LULESH's
/// artificial imbalance.
pub fn rank_imbalance_factor(rank: u32, strength: f64) -> f64 {
    let g = (rank as f64 * 0.618_033_988_749_895).fract();
    1.0 + strength * g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_factor_bounds_and_spread() {
        let vals: Vec<f64> = (0..64).map(|r| rank_imbalance_factor(r, 0.5)).collect();
        for &v in &vals {
            assert!((1.0..=1.5).contains(&v));
        }
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.4, "factors must spread: {min}..{max}");
        // Deterministic.
        assert_eq!(rank_imbalance_factor(7, 0.5), rank_imbalance_factor(7, 0.5));
    }

    #[test]
    fn zero_strength_is_balanced() {
        for r in 0..16 {
            assert_eq!(rank_imbalance_factor(r, 0.0), 1.0);
        }
    }
}
