//! TeaLeaf skeleton (UoB-HPC C++ port).
//!
//! 2-D heat conduction with five-point finite differences, implicit time
//! stepping via a CG solver. Per CG iteration: a stencil/matvec sweep and
//! vector updates (OpenMP loops over the rank's strip of the grid), a
//! halo exchange with strip neighbours, and two dot-product allreduces —
//! the "frequent MPI all-to-all exchanges" whose cost dominates the
//! many-rank configurations in the paper.
//!
//! The `tea_bm_5` benchmark (4000² cells) is special on Jureca-DC: the
//! whole working set fits the node's 512 MB of L3, so the un-instrumented
//! run is cache-resident — and the measurement system's buffers evict it
//! (Section V-C5).

use crate::common::BenchmarkInstance;
use nrlt_prog::{Cost, IterCost, ProgramBuilder, Schedule};
use nrlt_sim::JobLayout;

/// TeaLeaf run parameters.
#[derive(Debug, Clone)]
pub struct TeaLeafConfig {
    /// Grid dimension (tea_bm_5: 4000 → 4000² cells).
    pub n: u64,
    /// MPI ranks (1-D strip decomposition).
    pub ranks: u32,
    /// Threads per rank.
    pub threads_per_rank: u32,
    /// Outer time steps.
    pub steps: u32,
    /// CG iterations per step.
    pub cg_per_step: u32,
    /// Cost constants.
    pub costs: TeaLeafCosts,
}

/// Cost constants (calibration knobs).
#[derive(Debug, Clone)]
pub struct TeaLeafCosts {
    /// Instructions per cell per stencil sweep.
    pub stencil_instr: u64,
    /// Bytes per cell per stencil sweep (five-point reads + write).
    pub stencil_bytes: u64,
    /// Instructions per cell per vector update.
    pub update_instr: u64,
    /// Bytes per cell per vector update.
    pub update_bytes: u64,
    /// Instructions per cell per dot product.
    pub dot_instr: u64,
    /// Bytes per cell per dot product.
    pub dot_bytes: u64,
    /// Bytes of application state per cell (cache model: ~4 fields).
    pub state_bytes_per_cell: u64,
}

impl Default for TeaLeafCosts {
    fn default() -> Self {
        TeaLeafCosts {
            stencil_instr: 34,
            stencil_bytes: 56,
            update_instr: 10,
            update_bytes: 24,
            dot_instr: 6,
            dot_bytes: 16,
            state_bytes_per_cell: 32,
        }
    }
}

impl TeaLeafConfig {
    /// Build the rank programs.
    pub fn build(&self) -> BenchmarkInstance {
        let c = &self.costs;
        let cells_per_rank = self.n * self.n / self.ranks as u64;
        let ws = cells_per_rank * c.state_bytes_per_cell;
        let halo_bytes = self.n * 8 * 2; // two field rows
        let mut pb = ProgramBuilder::new(self.ranks);
        for rank in 0..self.ranks {
            let up = rank.checked_sub(1);
            let down = if rank + 1 < self.ranks { Some(rank + 1) } else { None };
            let mut rb = pb.rank(rank);
            let ph_total = rb.phase("total");
            rb.phase_start(ph_total);
            rb.enter("main");
            for _step in 0..self.steps {
                rb.scoped("solve", |rb| {
                    for _it in 0..self.cg_per_step {
                        rb.scoped("halo_update", |rb| {
                            if up.is_some() || down.is_some() {
                                // Pack boundary rows (strided copies on the
                                // master) — the per-rank cost that penalises
                                // many-rank decompositions.
                                rb.kernel(
                                    Cost::scalar(halo_bytes * 8 / 5).with_mem_bytes(halo_bytes * 2),
                                    halo_bytes * 2,
                                );
                                if let Some(u) = up {
                                    rb.irecv(u, 31, halo_bytes);
                                }
                                if let Some(d) = down {
                                    rb.irecv(d, 32, halo_bytes);
                                }
                                if let Some(u) = up {
                                    rb.isend(u, 32, halo_bytes);
                                }
                                if let Some(d) = down {
                                    rb.isend(d, 31, halo_bytes);
                                }
                                rb.waitall();
                                // Unpack received rows.
                                rb.kernel(
                                    Cost::scalar(halo_bytes * 8 / 5).with_mem_bytes(halo_bytes * 2),
                                    halo_bytes * 2,
                                );
                            }
                        });
                        rb.scoped("cg_calc_w", |rb| {
                            rb.parallel("cg_calc_w", |omp| {
                                omp.for_loop(
                                    "cg_calc_w",
                                    cells_per_rank,
                                    Schedule::Static,
                                    IterCost::Uniform(
                                        Cost::scalar(c.stencil_instr)
                                            .with_mem_bytes(c.stencil_bytes),
                                    ),
                                    ws,
                                );
                            });
                        });
                        rb.scoped("cg_calc_ur", |rb| {
                            rb.parallel("cg_calc_ur", |omp| {
                                omp.for_loop(
                                    "cg_calc_ur",
                                    cells_per_rank,
                                    Schedule::Static,
                                    IterCost::Uniform(
                                        Cost::scalar(c.update_instr).with_mem_bytes(c.update_bytes),
                                    ),
                                    ws,
                                );
                            });
                        });
                        // Two reductions per iteration (pw and rrn).
                        for _ in 0..2 {
                            rb.scoped("cg_calc_p", |rb| {
                                rb.parallel("cg_calc_p", |omp| {
                                    omp.for_loop(
                                        "cg_reduce",
                                        cells_per_rank,
                                        Schedule::Static,
                                        IterCost::Uniform(
                                            Cost::scalar(c.dot_instr).with_mem_bytes(c.dot_bytes),
                                        ),
                                        ws,
                                    );
                                });
                                rb.allreduce(8);
                            });
                        }
                    }
                });
            }
            rb.leave();
            rb.phase_end(ph_total);
        }
        BenchmarkInstance {
            name: format!("TeaLeaf({}^2, {}r x {}t)", self.n, self.ranks, self.threads_per_rank),
            program: pb.finish(),
            nodes: 1,
            layout: JobLayout::block(self.ranks, self.threads_per_rank),
            filter_rules: vec!["halo_update".into()],
            // The paper filtered aggressively, yet overhead stayed high —
            // the cache pollution does the damage, not the events.
        }
        .validated()
    }
}

fn tealeaf_named(idx: u32, ranks: u32, threads: u32) -> BenchmarkInstance {
    let mut b = TeaLeafConfig {
        n: 4000,
        ranks,
        threads_per_rank: threads,
        steps: 4,
        cg_per_step: 40,
        costs: TeaLeafCosts::default(),
    }
    .build();
    b.name = format!("TeaLeaf-{idx}");
    b
}

/// TeaLeaf-1: 1 rank × 128 threads — threads span both sockets.
pub fn tealeaf_1() -> BenchmarkInstance {
    tealeaf_named(1, 1, 128)
}

/// TeaLeaf-2: 2 ranks × 64 threads — one rank per socket; the optimal
/// configuration on Jureca-DC.
pub fn tealeaf_2() -> BenchmarkInstance {
    tealeaf_named(2, 2, 64)
}

/// TeaLeaf-3: 8 ranks × 16 threads — one rank per NUMA domain.
pub fn tealeaf_3() -> BenchmarkInstance {
    tealeaf_named(3, 8, 16)
}

/// TeaLeaf-4: 128 ranks × 1 thread — loses time in the frequent
/// reductions.
pub fn tealeaf_4() -> BenchmarkInstance {
    tealeaf_named(4, 128, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs_validate() {
        for (b, ranks, threads) in [
            (tealeaf_1(), 1, 128),
            (tealeaf_2(), 2, 64),
            (tealeaf_3(), 8, 16),
            (tealeaf_4(), 128, 1),
        ] {
            assert_eq!(b.program.n_ranks(), ranks);
            assert_eq!(b.layout.threads_per_rank, threads);
            assert_eq!(b.nodes, 1);
        }
    }

    #[test]
    fn working_set_fits_node_cache() {
        // tea_bm_5: 4000² × 32 B = 512 MB — exactly the node's L3.
        let cfg = TeaLeafConfig {
            n: 4000,
            ranks: 2,
            threads_per_rank: 64,
            steps: 1,
            cg_per_step: 1,
            costs: TeaLeafCosts::default(),
        };
        let per_rank = cfg.n * cfg.n / 2 * cfg.costs.state_bytes_per_cell;
        let l3: u64 = 256 << 20;
        assert!(per_rank <= l3, "per-socket working set must fit the socket L3");
        assert!(per_rank > l3 * 9 / 10, "…but only marginally, so measurement buffers evict it");
    }

    #[test]
    fn edge_ranks_have_one_neighbour() {
        let b = tealeaf_3();
        use nrlt_prog::{Action, MpiOp};
        let sends = |rank: usize| {
            b.program.ranks[rank]
                .iter()
                .filter(|a| matches!(a, Action::Mpi(MpiOp::Isend { .. })))
                .count()
        };
        // Rank 0 talks only down; rank 3 talks both ways.
        assert_eq!(sends(0), 160); // 4 steps × 40 iters × 1 neighbour
        assert_eq!(sends(3), 320);
    }
}
