//! # nrlt-miniapps — benchmark skeletons
//!
//! Performance skeletons of the paper's three mini-apps (Section IV):
//! MiniFE (finite-element assembly + CG), LULESH (shock hydrodynamics
//! time stepping) and the C++ TeaLeaf (implicit 2-D heat conduction),
//! each with the paper's tunable knobs (MiniFE imbalance percentage,
//! LULESH artificial imbalance and rank cubes, TeaLeaf rank/thread
//! splits of one node) and the eight named configurations used in the
//! evaluation.
//!
//! A skeleton reproduces the *performance structure* — phase layout,
//! loop/iteration counts, communication pattern, per-element costs,
//! working-set sizes — not the numerics. That is exactly the information
//! the paper's measurement techniques observe.

#![warn(missing_docs)]

pub mod common;
pub mod lulesh;
pub mod minife;
pub mod tealeaf;

pub use common::{rank_imbalance_factor, BenchmarkInstance};
pub use lulesh::{face_neighbours, lulesh_1, lulesh_2, LuleshConfig, LuleshCosts};
pub use minife::{minife_1, minife_2, MiniFeConfig, MiniFeCosts};
pub use tealeaf::{tealeaf_1, tealeaf_2, tealeaf_3, tealeaf_4, TeaLeafConfig, TeaLeafCosts};

/// All eight named configurations of the paper's evaluation.
pub fn all_configurations() -> Vec<BenchmarkInstance> {
    vec![
        minife_1(),
        minife_2(),
        lulesh_1(),
        lulesh_2(),
        tealeaf_1(),
        tealeaf_2(),
        tealeaf_3(),
        tealeaf_4(),
    ]
}
