//! # nrlt-observe — the virtual-time resource observatory
//!
//! The simulation pipeline already observes *itself* (wall-clock spans
//! and counters in `nrlt-telemetry`) and its *results* (the severity
//! explorer in `nrlt-report`). This crate observes the **simulated
//! machine**: which resource was contended when, where every injected
//! noise draw landed, and which chain of events produced each wait
//! state the analysis finds.
//!
//! Everything recorded here is derived from **virtual time** and the
//! deterministic event order of the engine — never from host clocks —
//! so a bundle is byte-identical across repeats and `--jobs` widths.
//! Three record families:
//!
//! * **Counter timelines** — resource occupancy sampled at event
//!   granularity: per-NUMA-domain bandwidth occupancy and per-socket L3
//!   pressure (from the duration model), network link utilisation and
//!   match-queue/wildcard-queue depths (from the MPI simulation), loop
//!   team occupancy (from the OpenMP schedule simulation), and
//!   per-location progress watermarks at phase boundaries.
//! * **Noise attribution** — every [`NoiseModel`] draw that perturbed
//!   the run (CPU jitter, OS detours, memory jitter, network jitter)
//!   tagged with (core, instance, magnitude), so the total injected
//!   perturbation decomposes per rank and per phase.
//! * **Wait-state provenance** — for each wait state the analysis
//!   finds, the delaying location, call paths, the chain of events
//!   leading to it, and how much injected noise falls into the causal
//!   window.
//!
//! The contract mirrors `Option<&Telemetry>`: every recording entry
//! point takes `Option<&RunObserve>`, and a `None` run performs **zero
//! observability work** (asserted by test — results are bit-identical
//! with the layer compiled in but disabled).
//!
//! [`NoiseModel`]: https://docs.rs/nrlt-sim

#![warn(missing_docs)]

pub mod export;
pub mod query;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on raw timeline samples kept per run after compaction. Exceeding
/// samples are thinned with a deterministic stride; the per-(series,
/// phase) aggregates remain exact either way.
pub const SAMPLE_CAP: usize = 128;
/// Cap on raw noise draws kept per run after compaction (aggregates
/// stay exact).
pub const DRAW_CAP: usize = 128;
/// Cap on wait-state provenance records kept per (run, metric), keeping
/// the most severe.
pub const WAIT_CAP: usize = 24;
/// In-flight cap on raw samples/draws held during a run. When a stream
/// exceeds it, every second retained element is dropped and the keep
/// stride doubles — deterministic geometric decimation, so memory stays
/// bounded on runs with tens of millions of events. Aggregates are
/// never decimated; window joins against decimated draws are lower
/// bounds (the `dropped` record says when that happened).
pub const LIVE_CAP: usize = 65_536;

/// Which noise channel a draw came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NoiseKind {
    /// Multiplicative jitter on the CPU part of a kernel.
    CpuJitter,
    /// OS detours stealing the core during a kernel.
    OsDetour,
    /// Multiplicative jitter (and persistent bias) on the memory part.
    MemJitter,
    /// Multiplicative jitter on a message or collective transfer.
    NetJitter,
}

impl NoiseKind {
    /// Stable name used in exports and queries.
    pub fn name(self) -> &'static str {
        match self {
            NoiseKind::CpuJitter => "cpu_jitter",
            NoiseKind::OsDetour => "os_detour",
            NoiseKind::MemJitter => "mem_jitter",
            NoiseKind::NetJitter => "net_jitter",
        }
    }

    /// Parse a name produced by [`NoiseKind::name`].
    pub fn from_name(s: &str) -> Option<NoiseKind> {
        match s {
            "cpu_jitter" => Some(NoiseKind::CpuJitter),
            "os_detour" => Some(NoiseKind::OsDetour),
            "mem_jitter" => Some(NoiseKind::MemJitter),
            "net_jitter" => Some(NoiseKind::NetJitter),
            _ => None,
        }
    }

    /// All kinds, in declaration order (= dense aggregate-table order).
    const ALL: [NoiseKind; 4] =
        [NoiseKind::CpuJitter, NoiseKind::OsDetour, NoiseKind::MemJitter, NoiseKind::NetJitter];

    fn index(self) -> usize {
        match self {
            NoiseKind::CpuJitter => 0,
            NoiseKind::OsDetour => 1,
            NoiseKind::MemJitter => 2,
            NoiseKind::NetJitter => 3,
        }
    }
}

/// One counter-timeline sample. The two time axes are recorded
/// side by side: `t_ns` is virtual (simulated) time, `seq` is the
/// engine's deterministic event sequence number — the "logical" axis,
/// meaningful even for quantities (queue depths) that exist in engine
/// order rather than at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Counter series name, e.g. `numa0.bw_threads`.
    pub series: String,
    /// Program phase open at the owning rank when sampled (empty
    /// outside any phase).
    pub phase: String,
    /// Virtual time of the sample, nanoseconds.
    pub t_ns: u64,
    /// Engine event sequence number at the sample.
    pub seq: u64,
    /// Counter value (integer; permille for fractional quantities).
    pub value: i64,
}

/// Exact aggregate of one (series, phase) cell over a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesAgg {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of sample values.
    pub sum: i64,
    /// Maximum sample value.
    pub max: i64,
}

/// One noise draw that perturbed the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoiseDraw {
    /// Channel the draw came from.
    pub kind: NoiseKind,
    /// Rank whose timing it perturbed.
    pub rank: u32,
    /// Core the perturbed location was pinned to (or the source rank's
    /// master core for network draws).
    pub core: u64,
    /// Noise-stream instance key (kernel sequence number or message
    /// sequence).
    pub instance: u64,
    /// Program phase open at the rank when drawn.
    pub phase: String,
    /// Virtual time the perturbed interval started, nanoseconds.
    pub t_ns: u64,
    /// Signed time injected, nanoseconds (negative draws sped the
    /// interval up).
    pub magnitude_ns: i64,
}

/// Exact aggregate of the noise injected into one (kind, rank, phase)
/// cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NoiseAgg {
    /// Number of draws.
    pub count: u64,
    /// Sum of signed magnitudes, nanoseconds.
    pub total_ns: i64,
    /// Sum of positive magnitudes only (injected delay), nanoseconds.
    pub delay_ns: u64,
}

/// One link of a wait state's causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// What the link is (`comp`, `mpi`, `barrier`, `wait`).
    pub what: String,
    /// Call path of the link.
    pub path: String,
    /// Location index executing the link.
    pub loc: usize,
    /// Link start (trace clock units).
    pub start: u64,
    /// Link end (trace clock units).
    pub end: u64,
}

/// Provenance of one wait state found by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitProvenance {
    /// Wait metric name (e.g. `delay_mpi_latesender`).
    pub metric: String,
    /// Waiting location index.
    pub waiter_loc: usize,
    /// Call path of the waiting instance.
    pub waiter_path: String,
    /// Enter timestamp of the waiting instance (trace clock units).
    pub waiter_enter: u64,
    /// Wait severity (trace clock units).
    pub severity: u64,
    /// Location whose late arrival released the waiter.
    pub delayer_loc: usize,
    /// Call path of the delaying instance.
    pub delayer_path: String,
    /// Enter timestamp of the delaying instance.
    pub delayer_enter: u64,
    /// Injected noise (positive magnitudes) on the delayer's rank
    /// inside the causal window, nanoseconds. Zero for logical-clock
    /// traces, whose timestamps are not commensurable with noise times.
    pub noise_ns: u64,
    /// The chain of events that produced the wait, oldest first.
    pub chain: Vec<ChainLink>,
}

/// Exact aggregate of the wait states in one (metric, call path) cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitAgg {
    /// Number of wait instances.
    pub count: u64,
    /// Sum of severities (trace clock units).
    pub severity: u64,
    /// Sum of injected noise in the causal windows, nanoseconds.
    pub noise_ns: u64,
}

/// Everything observed during one run (one pipeline cell), in its
/// exported form: series and phase names materialised as strings. Built
/// by [`RunObserve::finish`] from the interned raw records the hot path
/// accumulates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunData {
    /// Raw counter samples in record order (thinned at compaction).
    pub samples: Vec<Sample>,
    /// Exact per-(series, phase) aggregates.
    pub series_aggs: BTreeMap<(String, String), SeriesAgg>,
    /// Raw noise draws in record order (thinned at compaction).
    pub draws: Vec<NoiseDraw>,
    /// Exact per-(kind, rank, phase) noise aggregates.
    pub noise_aggs: BTreeMap<(NoiseKind, u32, String), NoiseAgg>,
    /// Wait-state provenance records (capped per metric at compaction).
    pub waits: Vec<WaitProvenance>,
    /// Exact per-(metric, waiter call path) wait totals.
    pub wait_aggs: BTreeMap<(String, String), WaitAgg>,
    /// Raw samples dropped by decimation (aggregates still count them).
    pub dropped_samples: u64,
    /// Raw draws dropped by decimation (aggregates still count them).
    pub dropped_draws: u64,
    /// Provenance records dropped by the per-metric cap.
    pub dropped_waits: u64,
}

impl RunData {
    /// Sum of positive noise magnitudes injected into `rank` with start
    /// time inside `[from_ns, to_ns]`.
    pub fn noise_in_window(&self, rank: u32, from_ns: u64, to_ns: u64) -> u64 {
        self.draws
            .iter()
            .filter(|d| d.rank == rank && d.t_ns >= from_ns && d.t_ns <= to_ns)
            .map(|d| d.magnitude_ns.max(0) as u64)
            .sum()
    }
}

/// Interned counter-series name, obtained from [`RunObserve::series`].
/// Recording by id skips the per-sample name formatting and string
/// hashing that dominated the observed hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(u32);

/// Interned program-phase name, obtained from [`RunObserve::phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(u32);

/// First-seen-order string interner. Ids are only meaningful within one
/// run; the exported [`RunData`] carries the materialised names, so the
/// bundle is independent of interning order.
#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_owned());
        self.ids.insert(s.to_owned(), id);
        id
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }
}

/// [`Sample`] with interned names — `Copy`, no per-record allocation.
#[derive(Debug, Clone, Copy)]
struct RawSample {
    series: u32,
    phase: u32,
    t_ns: u64,
    seq: u64,
    value: i64,
}

/// [`NoiseDraw`] with an interned phase — `Copy`.
#[derive(Debug, Clone, Copy)]
struct RawDraw {
    kind: NoiseKind,
    rank: u32,
    core: u64,
    instance: u64,
    phase: u32,
    t_ns: u64,
    magnitude_ns: i64,
}

/// Live recording state: interned raw streams plus integer-keyed
/// aggregates. The hot path never allocates once the name tables are
/// warm; [`RawRun::materialize`] turns it into the exported [`RunData`].
#[derive(Debug, Default)]
struct RawRun {
    series_names: Interner,
    phase_names: Interner,
    samples: Vec<RawSample>,
    /// Dense `[series][phase]` aggregate table, grown on demand. Ids
    /// are dense by construction, so the per-sample update is two
    /// indexed loads — no map lookup. `count == 0` marks untouched
    /// cells (every recorded sample increments its cell's count).
    series_aggs: Vec<Vec<SeriesAgg>>,
    draws: Vec<RawDraw>,
    /// Dense `[rank][phase][kind]` noise aggregates, grown on demand.
    noise_aggs: Vec<Vec<[NoiseAgg; 4]>>,
    waits: Vec<WaitProvenance>,
    wait_aggs: BTreeMap<(String, String), WaitAgg>,
    dropped_samples: u64,
    dropped_draws: u64,
    dropped_waits: u64,
    // Live-decimation state: total records seen and the current
    // geometric keep stride per raw stream.
    sample_pos: u64,
    sample_stride: u64,
    draw_pos: u64,
    draw_stride: u64,
}

impl RawRun {
    fn record_sample(&mut self, sample: RawSample) {
        let (s, p) = (sample.series as usize, sample.phase as usize);
        if self.series_aggs.len() <= s {
            self.series_aggs.resize_with(s + 1, Vec::new);
        }
        let row = &mut self.series_aggs[s];
        if row.len() <= p {
            row.resize_with(p + 1, SeriesAgg::default);
        }
        let agg = &mut row[p];
        agg.count += 1;
        agg.sum += sample.value;
        agg.max = agg.max.max(sample.value);
        let stride = self.sample_stride.max(1);
        if self.sample_pos.is_multiple_of(stride) {
            self.samples.push(sample);
            if self.samples.len() >= LIVE_CAP {
                self.dropped_samples += halve(&mut self.samples);
                self.sample_stride = stride * 2;
            }
        } else {
            self.dropped_samples += 1;
        }
        self.sample_pos += 1;
    }

    fn record_draw(&mut self, draw: RawDraw) {
        let (r, p) = (draw.rank as usize, draw.phase as usize);
        if self.noise_aggs.len() <= r {
            self.noise_aggs.resize_with(r + 1, Vec::new);
        }
        let row = &mut self.noise_aggs[r];
        if row.len() <= p {
            row.resize_with(p + 1, Default::default);
        }
        let agg = &mut row[p][draw.kind.index()];
        agg.count += 1;
        agg.total_ns += draw.magnitude_ns;
        agg.delay_ns += draw.magnitude_ns.max(0) as u64;
        let stride = self.draw_stride.max(1);
        if self.draw_pos.is_multiple_of(stride) {
            self.draws.push(draw);
            if self.draws.len() >= LIVE_CAP {
                self.dropped_draws += halve(&mut self.draws);
                self.draw_stride = stride * 2;
            }
        } else {
            self.dropped_draws += 1;
        }
        self.draw_pos += 1;
    }

    fn noise_in_window(&self, rank: u32, from_ns: u64, to_ns: u64) -> u64 {
        self.draws
            .iter()
            .filter(|d| d.rank == rank && d.t_ns >= from_ns && d.t_ns <= to_ns)
            .map(|d| d.magnitude_ns.max(0) as u64)
            .sum()
    }

    /// Keep the top [`WAIT_CAP`] waits per metric by (severity desc,
    /// record order). Selecting a top-K under a total order is stable
    /// under incremental application, so calling this both live (at
    /// [`LIVE_CAP`]) and at compaction yields the same final set as one
    /// call at the end.
    fn cap_waits(&mut self) {
        let mut by_metric: BTreeMap<String, u64> = BTreeMap::new();
        let mut order: Vec<usize> = (0..self.waits.len()).collect();
        order.sort_by(|&a, &b| {
            let (wa, wb) = (&self.waits[a], &self.waits[b]);
            (&wa.metric, std::cmp::Reverse(wa.severity), a).cmp(&(
                &wb.metric,
                std::cmp::Reverse(wb.severity),
                b,
            ))
        });
        let mut keep = vec![false; self.waits.len()];
        for &i in &order {
            let seen = by_metric.entry(self.waits[i].metric.clone()).or_insert(0);
            if (*seen as usize) < WAIT_CAP {
                keep[i] = true;
                *seen += 1;
            } else {
                self.dropped_waits += 1;
            }
        }
        let mut i = 0;
        self.waits.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Thin raw samples/draws to the caps with a deterministic stride,
    /// keep only the most severe waits per metric, and materialise the
    /// interned records into the exported string-keyed form. Aggregates
    /// are untouched (exact over the full run); the rebuilt maps sort by
    /// name, so the result is byte-identical to what direct string-keyed
    /// recording produced.
    fn materialize(mut self) -> RunData {
        self.dropped_samples += thin(&mut self.samples, SAMPLE_CAP);
        self.dropped_draws += thin(&mut self.draws, DRAW_CAP);
        self.cap_waits();
        let series = &self.series_names;
        let phases = &self.phase_names;
        RunData {
            samples: self
                .samples
                .iter()
                .map(|s| Sample {
                    series: series.name(s.series).to_owned(),
                    phase: phases.name(s.phase).to_owned(),
                    t_ns: s.t_ns,
                    seq: s.seq,
                    value: s.value,
                })
                .collect(),
            series_aggs: self
                .series_aggs
                .iter()
                .enumerate()
                .flat_map(|(s, row)| {
                    row.iter().enumerate().filter(|(_, agg)| agg.count > 0).map(move |(p, agg)| {
                        (
                            (series.name(s as u32).to_owned(), phases.name(p as u32).to_owned()),
                            agg.clone(),
                        )
                    })
                })
                .collect(),
            draws: self
                .draws
                .iter()
                .map(|d| NoiseDraw {
                    kind: d.kind,
                    rank: d.rank,
                    core: d.core,
                    instance: d.instance,
                    phase: phases.name(d.phase).to_owned(),
                    t_ns: d.t_ns,
                    magnitude_ns: d.magnitude_ns,
                })
                .collect(),
            noise_aggs: self
                .noise_aggs
                .iter()
                .enumerate()
                .flat_map(|(r, row)| {
                    row.iter().enumerate().flat_map(move |(p, cell)| {
                        NoiseKind::ALL.iter().filter(|k| cell[k.index()].count > 0).map(move |&k| {
                            (
                                (k, r as u32, phases.name(p as u32).to_owned()),
                                cell[k.index()].clone(),
                            )
                        })
                    })
                })
                .collect(),
            waits: self.waits,
            wait_aggs: self.wait_aggs,
            dropped_samples: self.dropped_samples,
            dropped_draws: self.dropped_draws,
            dropped_waits: self.dropped_waits,
        }
    }
}

/// Drop every second element (keeping index 0, 2, 4, …); returns how
/// many were dropped.
fn halve<T>(v: &mut Vec<T>) -> u64 {
    let before = v.len();
    let mut i = 0;
    v.retain(|_| {
        let k = i % 2 == 0;
        i += 1;
        k
    });
    (before - v.len()) as u64
}

/// Keep at most `cap` elements with a deterministic stride; returns how
/// many were dropped.
fn thin<T>(v: &mut Vec<T>, cap: usize) -> u64 {
    if v.len() <= cap {
        return 0;
    }
    let stride = v.len().div_ceil(cap);
    let before = v.len();
    let mut i = 0;
    v.retain(|_| {
        let k = i % stride == 0;
        i += 1;
        k
    });
    (before - v.len()) as u64
}

/// Per-run recorder handed into one pipeline cell (engine run +
/// analysis). Single-threaded by construction — each cell runs on one
/// worker — hence the interior [`RefCell`].
#[derive(Debug)]
pub struct RunObserve {
    name: String,
    data: RefCell<RawRun>,
}

impl RunObserve {
    /// Start recording a run named `name`. Names key the bundle's
    /// deterministic merge: derive them from stable identities
    /// (instance, mode, repetition), never from timing.
    pub fn new(name: impl Into<String>) -> RunObserve {
        RunObserve { name: name.into(), data: RefCell::new(RawRun::default()) }
    }

    /// The run name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Intern a counter-series name. Recorders on hot paths intern each
    /// name once up front and record by id; interning the same name
    /// again returns the same id.
    pub fn series(&self, name: &str) -> SeriesId {
        SeriesId(self.data.borrow_mut().series_names.intern(name))
    }

    /// Intern a program-phase name (the empty string is the valid
    /// "outside any phase" name).
    pub fn phase(&self, name: &str) -> PhaseId {
        PhaseId(self.data.borrow_mut().phase_names.intern(name))
    }

    /// Record one counter sample by interned ids — the allocation-free
    /// hot path.
    pub fn sample_id(&self, series: SeriesId, phase: PhaseId, t_ns: u64, seq: u64, value: i64) {
        self.data.borrow_mut().record_sample(RawSample {
            series: series.0,
            phase: phase.0,
            t_ns,
            seq,
            value,
        });
    }

    /// Record a batch of counter samples sharing one (phase, time, seq)
    /// point — one borrow of the recording state for the whole batch.
    /// Used by per-event multi-series recorders (e.g. queue depths).
    pub fn sample_batch_id(&self, phase: PhaseId, t_ns: u64, seq: u64, values: &[(SeriesId, i64)]) {
        let mut data = self.data.borrow_mut();
        for &(series, value) in values {
            data.record_sample(RawSample { series: series.0, phase: phase.0, t_ns, seq, value });
        }
    }

    /// Record one counter sample by name. Convenience wrapper over
    /// [`RunObserve::sample_id`] that interns per call; prefer the id
    /// form in per-event code.
    pub fn sample(&self, series: &str, phase: &str, t_ns: u64, seq: u64, value: i64) {
        let mut data = self.data.borrow_mut();
        let series = data.series_names.intern(series);
        let phase = data.phase_names.intern(phase);
        data.record_sample(RawSample { series, phase, t_ns, seq, value });
    }

    /// Record one noise draw by interned phase id — the allocation-free
    /// hot path.
    #[allow(clippy::too_many_arguments)]
    pub fn noise_id(
        &self,
        kind: NoiseKind,
        rank: u32,
        core: u64,
        instance: u64,
        phase: PhaseId,
        t_ns: u64,
        magnitude_ns: i64,
    ) {
        self.data.borrow_mut().record_draw(RawDraw {
            kind,
            rank,
            core,
            instance,
            phase: phase.0,
            t_ns,
            magnitude_ns,
        });
    }

    /// Record one noise draw by phase name (interns per call).
    #[allow(clippy::too_many_arguments)]
    pub fn noise(
        &self,
        kind: NoiseKind,
        rank: u32,
        core: u64,
        instance: u64,
        phase: &str,
        t_ns: u64,
        magnitude_ns: i64,
    ) {
        let mut data = self.data.borrow_mut();
        let phase = data.phase_names.intern(phase);
        data.record_draw(RawDraw { kind, rank, core, instance, phase, t_ns, magnitude_ns });
    }

    /// Record the provenance of one wait state.
    pub fn wait(&self, prov: WaitProvenance) {
        let mut data = self.data.borrow_mut();
        let agg =
            data.wait_aggs.entry((prov.metric.clone(), prov.waiter_path.clone())).or_default();
        agg.count += 1;
        agg.severity += prov.severity;
        agg.noise_ns += prov.noise_ns;
        data.waits.push(prov);
        if data.waits.len() >= LIVE_CAP {
            data.cap_waits();
        }
    }

    /// Sum of positive noise magnitudes injected into `rank` within
    /// `[from_ns, to_ns]` — the analysis joins wait windows against
    /// this.
    pub fn noise_in_window(&self, rank: u32, from_ns: u64, to_ns: u64) -> u64 {
        self.data.borrow().noise_in_window(rank, from_ns, to_ns)
    }

    /// Finish recording: compact and materialise the run's data.
    pub fn finish(self) -> (String, RunData) {
        (self.name, self.data.into_inner().materialize())
    }
}

/// The observatory: a shared, thread-safe sink collecting finished
/// runs. Mirrors `Telemetry`: [`Observe::call_count`] proves that a
/// pipeline run without a handle performs zero observability work.
#[derive(Debug, Default)]
pub struct Observe {
    calls: AtomicU64,
    runs: Mutex<BTreeMap<String, RunData>>,
}

impl Observe {
    /// Fresh, empty observatory.
    pub fn new() -> Observe {
        Observe::default()
    }

    /// Attach a finished run. Runs are keyed by name, so the resulting
    /// bundle is independent of attach order (worker scheduling).
    pub fn attach(&self, run: RunObserve) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let (name, data) = run.finish();
        let prev = self.runs.lock().expect("observe lock").insert(name, data);
        debug_assert!(prev.is_none(), "duplicate observe run name");
    }

    /// How many runs have been attached. The zero-work proof: a
    /// pipeline run with `None` handles leaves this at 0 **and** leaves
    /// no [`RunObserve`] allocated anywhere.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Snapshot of all attached runs, sorted by name.
    pub fn runs(&self) -> BTreeMap<String, RunData> {
        self.runs.lock().expect("observe lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_exact_after_thinning() {
        let run = RunObserve::new("r");
        for i in 0..1000u64 {
            run.sample("numa0.bw_threads", "cg", i, i, (i % 7) as i64);
        }
        let (_, data) = run.finish();
        assert!(data.samples.len() <= SAMPLE_CAP);
        assert_eq!(data.dropped_samples, 1000 - data.samples.len() as u64);
        let agg = &data.series_aggs[&("numa0.bw_threads".to_owned(), "cg".to_owned())];
        assert_eq!(agg.count, 1000);
        assert_eq!(agg.sum, (0..1000).map(|i| (i % 7) as i64).sum::<i64>());
        assert_eq!(agg.max, 6);
    }

    #[test]
    fn noise_window_join() {
        let run = RunObserve::new("r");
        run.noise(NoiseKind::OsDetour, 1, 3, 0, "", 100, 50);
        run.noise(NoiseKind::MemJitter, 1, 3, 1, "", 200, -20);
        run.noise(NoiseKind::OsDetour, 2, 4, 0, "", 150, 99);
        assert_eq!(run.noise_in_window(1, 0, 300), 50); // negative draw ignored
        assert_eq!(run.noise_in_window(1, 150, 300), 0);
        assert_eq!(run.noise_in_window(2, 0, 300), 99);
    }

    #[test]
    fn wait_cap_keeps_most_severe() {
        let run = RunObserve::new("r");
        for i in 0..(WAIT_CAP as u64 + 10) {
            run.wait(WaitProvenance {
                metric: "delay_mpi_latesender".into(),
                waiter_loc: 0,
                waiter_path: "p".into(),
                waiter_enter: i,
                severity: i,
                delayer_loc: 1,
                delayer_path: "q".into(),
                delayer_enter: 0,
                noise_ns: 0,
                chain: Vec::new(),
            });
        }
        let (_, data) = run.finish();
        assert_eq!(data.waits.len(), WAIT_CAP);
        assert_eq!(data.dropped_waits, 10);
        // Most severe survived.
        assert!(data.waits.iter().any(|w| w.severity == WAIT_CAP as u64 + 9));
        assert!(!data.waits.iter().any(|w| w.severity < 10));
    }

    #[test]
    fn live_decimation_bounds_memory_and_keeps_aggregates_exact() {
        let run = RunObserve::new("r");
        let total = LIVE_CAP as u64 * 3;
        for i in 0..total {
            run.sample("numa0.bw_threads", "cg", i, i, 1);
            run.noise(NoiseKind::CpuJitter, 0, 0, i, "cg", i, 2);
            // The live buffers never reach LIVE_CAP.
            assert!(run.data.borrow().samples.len() < LIVE_CAP);
            assert!(run.data.borrow().draws.len() < LIVE_CAP);
        }
        let (_, data) = run.finish();
        assert!(data.samples.len() <= SAMPLE_CAP);
        assert_eq!(data.dropped_samples + data.samples.len() as u64, total);
        assert_eq!(data.dropped_draws + data.draws.len() as u64, total);
        let agg = &data.series_aggs[&("numa0.bw_threads".to_owned(), "cg".to_owned())];
        assert_eq!(agg.count, total);
        assert_eq!(agg.sum, total as i64);
        let nagg = &data.noise_aggs[&(NoiseKind::CpuJitter, 0, "cg".to_owned())];
        assert_eq!(nagg.count, total);
        assert_eq!(nagg.delay_ns, total * 2);
    }

    #[test]
    fn interned_recording_matches_string_recording() {
        let by_name = RunObserve::new("r");
        let by_id = RunObserve::new("r");
        let series = by_id.series("numa0.bw_threads");
        let wire = by_id.series("net.network.wire_ns");
        let cg = by_id.phase("cg");
        let none = by_id.phase("");
        for i in 0..500u64 {
            by_name.sample("numa0.bw_threads", "cg", i, i, i as i64);
            by_id.sample_id(series, cg, i, i, i as i64);
            by_name.sample("net.network.wire_ns", "", i, i, 7);
            by_id.sample_id(wire, none, i, i, 7);
            by_name.noise(NoiseKind::OsDetour, 1, 2, i, "cg", i, 9);
            by_id.noise_id(NoiseKind::OsDetour, 1, 2, i, cg, i, 9);
        }
        assert_eq!(by_name.noise_in_window(1, 0, 499), by_id.noise_in_window(1, 0, 499));
        assert_eq!(by_name.finish(), by_id.finish());
    }

    #[test]
    fn attach_is_order_independent() {
        let a = Observe::new();
        let b = Observe::new();
        let mk = |name: &str| {
            let r = RunObserve::new(name);
            r.sample("s", "", 1, 1, 1);
            r
        };
        a.attach(mk("x"));
        a.attach(mk("y"));
        b.attach(mk("y"));
        b.attach(mk("x"));
        assert_eq!(a.runs(), b.runs());
        assert_eq!(a.call_count(), 2);
    }
}
