//! The three query families an observe bundle answers:
//!
//! 1. **Top-k contended resources per phase** — from the exact
//!    per-(series, phase) aggregates.
//! 2. **Noise share per metric cell** — from the exact per-(metric,
//!    call path) wait totals: how much of the accumulated wait severity
//!    is covered by noise injected into the causal windows.
//! 3. **Provenance of a named wait state** — wait states are named
//!    `metric#i` with `i` indexing that metric's records in descending
//!    severity order.

use crate::{RunData, WaitProvenance};
use std::collections::BTreeMap;

/// One contended resource in a phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Contention {
    /// Counter series name.
    pub series: String,
    /// Mean sample value over the phase.
    pub mean: f64,
    /// Maximum sample value over the phase.
    pub max: i64,
    /// Number of samples.
    pub count: u64,
}

/// Top-`k` contended resources per phase, phases sorted by name (the
/// empty phase — samples outside any program phase — sorts first).
/// Resources rank by mean sample value, ties by name.
pub fn top_contended(data: &RunData, k: usize) -> Vec<(String, Vec<Contention>)> {
    let mut by_phase: BTreeMap<&str, Vec<Contention>> = BTreeMap::new();
    for ((series, phase), agg) in &data.series_aggs {
        if agg.count == 0 {
            continue;
        }
        by_phase.entry(phase).or_default().push(Contention {
            series: series.clone(),
            mean: agg.sum as f64 / agg.count as f64,
            max: agg.max,
            count: agg.count,
        });
    }
    by_phase
        .into_iter()
        .map(|(phase, mut rows)| {
            rows.sort_by(|a, b| {
                b.mean.partial_cmp(&a.mean).unwrap().then_with(|| a.series.cmp(&b.series))
            });
            rows.truncate(k);
            (phase.to_owned(), rows)
        })
        .collect()
}

/// Noise share of one (metric, call path) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseShare {
    /// Wait metric name.
    pub metric: String,
    /// Waiter call path.
    pub path: String,
    /// Wait instances in the cell.
    pub count: u64,
    /// Accumulated severity (trace clock units).
    pub severity: u64,
    /// Injected noise in the causal windows, nanoseconds.
    pub noise_ns: u64,
    /// `noise_ns / severity`, percent (0 when severity is 0 — e.g. on
    /// logical-clock runs, whose windows carry no commensurable noise).
    pub share_pct: f64,
}

/// Noise share per metric cell, descending by severity.
pub fn noise_shares(data: &RunData) -> Vec<NoiseShare> {
    let mut rows: Vec<NoiseShare> = data
        .wait_aggs
        .iter()
        .map(|((metric, path), a)| NoiseShare {
            metric: metric.clone(),
            path: path.clone(),
            count: a.count,
            severity: a.severity,
            noise_ns: a.noise_ns,
            share_pct: if a.severity == 0 {
                0.0
            } else {
                100.0 * a.noise_ns as f64 / a.severity as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| {
        b.severity.cmp(&a.severity).then_with(|| (&a.metric, &a.path).cmp(&(&b.metric, &b.path)))
    });
    rows
}

/// The retained wait records of `metric`, descending by severity (ties
/// by record order) — the order behind `metric#i` names.
pub fn waits_by_severity<'a>(data: &'a RunData, metric: &str) -> Vec<&'a WaitProvenance> {
    let mut waits: Vec<(usize, &WaitProvenance)> =
        data.waits.iter().enumerate().filter(|(_, w)| w.metric == metric).collect();
    waits.sort_by_key(|&(i, w)| (std::cmp::Reverse(w.severity), i));
    waits.into_iter().map(|(_, w)| w).collect()
}

/// Resolve a wait name of the form `metric#i` (e.g.
/// `delay_mpi_latesender#0`).
pub fn named_wait<'a>(data: &'a RunData, name: &str) -> Option<&'a WaitProvenance> {
    let (metric, idx) = name.rsplit_once('#')?;
    let idx: usize = idx.parse().ok()?;
    waits_by_severity(data, metric).get(idx).copied()
}

/// The most severe retained wait state of the run, with its name.
pub fn dominant_wait(data: &RunData) -> Option<(String, &WaitProvenance)> {
    let mut best: Option<(String, &WaitProvenance)> = None;
    for metric in
        data.waits.iter().map(|w| w.metric.as_str()).collect::<std::collections::BTreeSet<_>>()
    {
        if let Some(w) = waits_by_severity(data, metric).first() {
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    (w.severity, std::cmp::Reverse(metric))
                        > (b.severity, std::cmp::Reverse(b.metric.as_str()))
                }
            };
            if better {
                best = Some((format!("{metric}#0"), w));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunObserve;

    fn data() -> RunData {
        let run = RunObserve::new("r");
        for i in 0..10 {
            run.sample("numa0.bw_threads", "cg", i, i, 16);
            run.sample("socket0.l3_dram_permille", "cg", i, i, 50 + i as i64);
            run.sample("mpi.match_queue", "halo", i, i, 2);
        }
        for (i, sev) in [(0u64, 500u64), (1, 900), (2, 100)] {
            run.wait(WaitProvenance {
                metric: "delay_mpi_latesender".into(),
                waiter_loc: 0,
                waiter_path: "main/halo/MPI_Recv".into(),
                waiter_enter: i,
                severity: sev,
                delayer_loc: 1,
                delayer_path: "main/halo/MPI_Send".into(),
                delayer_enter: i,
                noise_ns: sev / 2,
                chain: Vec::new(),
            });
        }
        let (_, d) = run.finish();
        d
    }

    #[test]
    fn top_contended_ranks_by_mean() {
        let d = data();
        let top = top_contended(&d, 1);
        assert_eq!(top.len(), 2); // phases cg and halo
        assert_eq!(top[0].0, "cg");
        assert_eq!(top[0].1[0].series, "socket0.l3_dram_permille");
        assert_eq!(top[1].0, "halo");
        assert_eq!(top[1].1[0].series, "mpi.match_queue");
    }

    #[test]
    fn noise_share_is_exact() {
        let d = data();
        let rows = noise_shares(&d);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 3);
        assert_eq!(rows[0].severity, 1500);
        assert_eq!(rows[0].noise_ns, 250 + 450 + 50);
        assert!((rows[0].share_pct - 50.0).abs() < 0.01);
    }

    #[test]
    fn named_wait_indexes_by_severity() {
        let d = data();
        let w0 = named_wait(&d, "delay_mpi_latesender#0").unwrap();
        assert_eq!(w0.severity, 900);
        let w2 = named_wait(&d, "delay_mpi_latesender#2").unwrap();
        assert_eq!(w2.severity, 100);
        assert!(named_wait(&d, "delay_mpi_latesender#3").is_none());
        assert!(named_wait(&d, "nonsense").is_none());
        let (name, dom) = dominant_wait(&d).unwrap();
        assert_eq!(name, "delay_mpi_latesender#0");
        assert_eq!(dom.severity, 900);
    }
}
