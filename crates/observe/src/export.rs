//! Deterministic bundle export and re-import.
//!
//! An `--observe <dir>` bundle holds two files:
//!
//! * `observe.jsonl` — one kind-tagged JSON object per line, every
//!   value an integer or an escaped string. Runs are written in sorted
//!   name order and each run's records in a fixed section order, so the
//!   file is byte-identical across repeats and worker counts.
//! * `observe.trace.json` — Chrome counter tracks (`ph:"C"`) for the
//!   sampled timelines, one process per (run, axis): the *virtual
//!   time* axis in microseconds and the *event order* axis in engine
//!   sequence numbers. Counter names go through the same escaping path
//!   as span names.
//!
//! Unknown kinds are ignored on re-import (forward compatibility);
//! malformed lines are errors.

use crate::{
    ChainLink, NoiseAgg, NoiseDraw, NoiseKind, Observe, RunData, Sample, SeriesAgg, WaitAgg,
    WaitProvenance,
};
use nrlt_telemetry::chrome;
use nrlt_telemetry::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// An in-memory observe bundle: named runs, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObserveBundle {
    /// Run data keyed by run name.
    pub runs: BTreeMap<String, RunData>,
}

impl ObserveBundle {
    /// Snapshot an [`Observe`] sink into a bundle.
    pub fn from_observe(obs: &Observe) -> ObserveBundle {
        ObserveBundle { runs: obs.runs() }
    }

    /// Load `dir/observe.jsonl`.
    pub fn load(dir: &Path) -> Result<ObserveBundle, String> {
        let path = dir.join("observe.jsonl");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        ObserveBundle::from_jsonl(&text)
    }

    /// Serialize to the JSONL form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, data) in &self.runs {
            let run = json::string(name);
            let _ = writeln!(out, "{{\"kind\":\"run\",\"name\":{run}}}");
            for s in &data.samples {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"sample\",\"run\":{run},\"series\":{},\"phase\":{},\"t_ns\":{},\"seq\":{},\"value\":{}}}",
                    json::string(&s.series),
                    json::string(&s.phase),
                    s.t_ns,
                    s.seq,
                    s.value
                );
            }
            for ((series, phase), a) in &data.series_aggs {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"series_agg\",\"run\":{run},\"series\":{},\"phase\":{},\"count\":{},\"sum\":{},\"max\":{}}}",
                    json::string(series),
                    json::string(phase),
                    a.count,
                    a.sum,
                    a.max
                );
            }
            for d in &data.draws {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"noise\",\"run\":{run},\"channel\":{},\"rank\":{},\"core\":{},\"instance\":{},\"phase\":{},\"t_ns\":{},\"magnitude_ns\":{}}}",
                    json::string(d.kind.name()),
                    d.rank,
                    d.core,
                    d.instance,
                    json::string(&d.phase),
                    d.t_ns,
                    d.magnitude_ns
                );
            }
            for ((kind, rank, phase), a) in &data.noise_aggs {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"noise_agg\",\"run\":{run},\"channel\":{},\"rank\":{},\"phase\":{},\"count\":{},\"total_ns\":{},\"delay_ns\":{}}}",
                    json::string(kind.name()),
                    rank,
                    json::string(phase),
                    a.count,
                    a.total_ns,
                    a.delay_ns
                );
            }
            for w in &data.waits {
                let chain: Vec<String> = w
                    .chain
                    .iter()
                    .map(|l| {
                        format!(
                            "{{\"what\":{},\"path\":{},\"loc\":{},\"start\":{},\"end\":{}}}",
                            json::string(&l.what),
                            json::string(&l.path),
                            l.loc,
                            l.start,
                            l.end
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"wait\",\"run\":{run},\"metric\":{},\"waiter_loc\":{},\"waiter_path\":{},\"waiter_enter\":{},\"severity\":{},\"delayer_loc\":{},\"delayer_path\":{},\"delayer_enter\":{},\"noise_ns\":{},\"chain\":[{}]}}",
                    json::string(&w.metric),
                    w.waiter_loc,
                    json::string(&w.waiter_path),
                    w.waiter_enter,
                    w.severity,
                    w.delayer_loc,
                    json::string(&w.delayer_path),
                    w.delayer_enter,
                    w.noise_ns,
                    chain.join(",")
                );
            }
            for ((metric, path), a) in &data.wait_aggs {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"wait_agg\",\"run\":{run},\"metric\":{},\"path\":{},\"count\":{},\"severity\":{},\"noise_ns\":{}}}",
                    json::string(metric),
                    json::string(path),
                    a.count,
                    a.severity,
                    a.noise_ns
                );
            }
            if data.dropped_samples + data.dropped_draws + data.dropped_waits > 0 {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"dropped\",\"run\":{run},\"samples\":{},\"draws\":{},\"waits\":{}}}",
                    data.dropped_samples, data.dropped_draws, data.dropped_waits
                );
            }
        }
        out
    }

    /// Parse the contents of an `observe.jsonl` export.
    pub fn from_jsonl(text: &str) -> Result<ObserveBundle, String> {
        let mut bundle = ObserveBundle::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let kind = v.get("kind").and_then(Value::as_str).unwrap_or("");
            if kind == "run" {
                bundle.runs.entry(str_field(&v, "name")?).or_default();
                continue;
            }
            let run = match v.get("run").and_then(Value::as_str) {
                Some(r) => r.to_owned(),
                None => continue, // unknown kinds without a run: skip
            };
            let data = bundle.runs.entry(run).or_default();
            match kind {
                "sample" => data.samples.push(Sample {
                    series: str_field(&v, "series")?,
                    phase: str_field(&v, "phase")?,
                    t_ns: u64_field(&v, "t_ns")?,
                    seq: u64_field(&v, "seq")?,
                    value: i64_field(&v, "value")?,
                }),
                "series_agg" => {
                    data.series_aggs.insert(
                        (str_field(&v, "series")?, str_field(&v, "phase")?),
                        SeriesAgg {
                            count: u64_field(&v, "count")?,
                            sum: i64_field(&v, "sum")?,
                            max: i64_field(&v, "max")?,
                        },
                    );
                }
                "noise" => data.draws.push(NoiseDraw {
                    kind: noise_kind(&v)?,
                    rank: u64_field(&v, "rank")? as u32,
                    core: u64_field(&v, "core")?,
                    instance: u64_field(&v, "instance")?,
                    phase: str_field(&v, "phase")?,
                    t_ns: u64_field(&v, "t_ns")?,
                    magnitude_ns: i64_field(&v, "magnitude_ns")?,
                }),
                "noise_agg" => {
                    data.noise_aggs.insert(
                        (noise_kind(&v)?, u64_field(&v, "rank")? as u32, str_field(&v, "phase")?),
                        NoiseAgg {
                            count: u64_field(&v, "count")?,
                            total_ns: i64_field(&v, "total_ns")?,
                            delay_ns: u64_field(&v, "delay_ns")?,
                        },
                    );
                }
                "wait" => {
                    let chain = match v.get("chain") {
                        Some(c) => parse_chain(c)?,
                        None => Vec::new(),
                    };
                    data.waits.push(WaitProvenance {
                        metric: str_field(&v, "metric")?,
                        waiter_loc: u64_field(&v, "waiter_loc")? as usize,
                        waiter_path: str_field(&v, "waiter_path")?,
                        waiter_enter: u64_field(&v, "waiter_enter")?,
                        severity: u64_field(&v, "severity")?,
                        delayer_loc: u64_field(&v, "delayer_loc")? as usize,
                        delayer_path: str_field(&v, "delayer_path")?,
                        delayer_enter: u64_field(&v, "delayer_enter")?,
                        noise_ns: u64_field(&v, "noise_ns")?,
                        chain,
                    });
                }
                "wait_agg" => {
                    data.wait_aggs.insert(
                        (str_field(&v, "metric")?, str_field(&v, "path")?),
                        WaitAgg {
                            count: u64_field(&v, "count")?,
                            severity: u64_field(&v, "severity")?,
                            noise_ns: u64_field(&v, "noise_ns")?,
                        },
                    );
                }
                "dropped" => {
                    data.dropped_samples = u64_field(&v, "samples")?;
                    data.dropped_draws = u64_field(&v, "draws")?;
                    data.dropped_waits = u64_field(&v, "waits")?;
                }
                _ => {} // forward compatibility
            }
        }
        Ok(bundle)
    }

    /// Render the counter timelines as a Chrome trace document. Each
    /// run becomes two processes: the virtual-time axis (µs) and the
    /// event-order axis (engine sequence numbers rendered as µs).
    pub fn to_chrome(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for (i, (name, data)) in self.runs.iter().enumerate() {
            let pid_time = (2 * i) as u32;
            let pid_seq = (2 * i + 1) as u32;
            events.push(chrome::process_meta(pid_time, &format!("{name} (virtual time)")));
            events.push(chrome::process_meta(pid_seq, &format!("{name} (event order)")));
            for s in &data.samples {
                events.push(chrome::counter_event(
                    &s.series,
                    "resource",
                    &chrome::ns_to_us(s.t_ns),
                    pid_time,
                    0,
                    s.value,
                ));
                events.push(chrome::counter_event(
                    &s.series,
                    "resource",
                    &format!("{}", s.seq),
                    pid_seq,
                    0,
                    s.value,
                ));
            }
        }
        chrome::document(events)
    }

    /// Write `observe.jsonl` and `observe.trace.json` into `dir`.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("observe.jsonl"), self.to_jsonl())?;
        std::fs::write(dir.join("observe.trace.json"), self.to_chrome())
    }
}

fn parse_chain(v: &Value) -> Result<Vec<ChainLink>, String> {
    let arr = v.as_arr().ok_or("chain is not an array")?;
    arr.iter()
        .map(|l| {
            Ok(ChainLink {
                what: str_field(l, "what")?,
                path: str_field(l, "path")?,
                loc: u64_field(l, "loc")? as usize,
                start: u64_field(l, "start")?,
                end: u64_field(l, "end")?,
            })
        })
        .collect()
}

fn noise_kind(v: &Value) -> Result<NoiseKind, String> {
    let name = str_field(v, "channel")?;
    NoiseKind::from_name(&name).ok_or_else(|| format!("unknown noise channel {name:?}"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn i64_field(v: &Value, key: &str) -> Result<i64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as i64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunObserve;

    fn bundle() -> ObserveBundle {
        let obs = Observe::new();
        let run = RunObserve::new("MiniFE-1:tsc:rep0");
        run.sample("numa0.bw_threads", "cg", 1_500, 7, 16);
        run.sample("net.wire_ns", "", 2_000, 9, 840);
        run.noise(NoiseKind::OsDetour, 0, 3, 12, "cg", 1_400, 95_000);
        run.wait(WaitProvenance {
            metric: "delay_mpi_latesender".into(),
            waiter_loc: 4,
            waiter_path: "main/cg/MPI_Recv".into(),
            waiter_enter: 5_000,
            severity: 1_200,
            delayer_loc: 0,
            delayer_path: "main/cg/MPI_Send".into(),
            delayer_enter: 6_000,
            noise_ns: 95_000,
            chain: vec![ChainLink {
                what: "comp".into(),
                path: "main/cg/spmv".into(),
                loc: 0,
                start: 100,
                end: 5_900,
            }],
        });
        obs.attach(run);
        ObserveBundle::from_observe(&obs)
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let b = bundle();
        let text = b.to_jsonl();
        let parsed = ObserveBundle::from_jsonl(&text).expect("parses");
        assert_eq!(parsed, b);
        // And a second serialization is byte-identical.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn unknown_kinds_are_ignored() {
        let text = format!(
            "{}{}\n",
            bundle().to_jsonl(),
            "{\"kind\":\"future_thing\",\"run\":\"MiniFE-1:tsc:rep0\",\"x\":1}"
        );
        let parsed = ObserveBundle::from_jsonl(&text).expect("parses");
        assert_eq!(parsed, bundle());
    }

    #[test]
    fn chrome_export_is_valid_json_with_both_axes() {
        let doc = bundle().to_chrome();
        let v = json::parse(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> =
            evs.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("C")).collect();
        // Two samples, each on the time axis (pid 0) and the event axis
        // (pid 1).
        assert_eq!(counters.len(), 4);
        let pids: Vec<f64> =
            counters.iter().filter_map(|e| e.get("pid").and_then(Value::as_f64)).collect();
        assert!(pids.contains(&0.0) && pids.contains(&1.0));
    }
}
